// Package rules implements the rule-based repairing the paper contrasts
// with in §2.3: editing rules backed by master data (Fan et al., "Towards
// certain fixes with editing rules and master data"). An editing rule says:
// when a tuple agrees with a master-relation tuple on a key set of
// attributes, copy the rule's target attributes from the master tuple.
// Unlike the cost-based model, repairs are deterministic and certain — but
// they only reach tuples whose key attributes are correct and covered by
// master data, which is exactly the trade-off the paper describes.
package rules

import (
	"fmt"

	"ftrepair/internal/dataset"
)

// Rule is one editing rule: Match attributes identify the master tuple,
// Copy attributes are overwritten from it. Verify attributes (optional)
// must already agree with the master tuple for the rule to fire — the
// editing-rules notion of a verified region, which keeps fixes certain
// when the match key itself may be dirty: a tuple whose key was corrupted
// toward another master key will almost never also agree on the verify
// attributes.
type Rule struct {
	Name   string
	Match  []int
	Copy   []int
	Verify []int
}

// WithVerify returns a copy of the rule requiring the named attributes to
// match the master before firing.
func (r *Rule) WithVerify(schema *dataset.Schema, attrs ...string) (*Rule, error) {
	v, err := schema.Indices(attrs...)
	if err != nil {
		return nil, fmt.Errorf("rules: %s: %w", r.Name, err)
	}
	out := *r
	out.Verify = v
	return &out, nil
}

// NewRule builds a rule from attribute names over the data schema; the
// master relation must carry the same attribute names.
func NewRule(schema *dataset.Schema, name string, match, copyAttrs []string) (*Rule, error) {
	if len(match) == 0 || len(copyAttrs) == 0 {
		return nil, fmt.Errorf("rules: %s: match and copy sets must be non-empty", name)
	}
	m, err := schema.Indices(match...)
	if err != nil {
		return nil, fmt.Errorf("rules: %s: %w", name, err)
	}
	c, err := schema.Indices(copyAttrs...)
	if err != nil {
		return nil, fmt.Errorf("rules: %s: %w", name, err)
	}
	seen := map[int]bool{}
	for _, col := range m {
		seen[col] = true
	}
	for _, col := range c {
		if seen[col] {
			return nil, fmt.Errorf("rules: %s: attribute %s in both match and copy", name, schema.Attr(col).Name)
		}
	}
	return &Rule{Name: name, Match: m, Copy: c}, nil
}

// Engine applies editing rules against a master relation.
type Engine struct {
	master *dataset.Relation
	rules  []*Rule
	// Per rule: the copy and verify attributes translated to master
	// columns, the master key index (first row wins), and the keys whose
	// copy values are ambiguous in the master data — a certain fix must be
	// unique, so those keys never fire.
	masterCopy   [][]int
	masterVerify [][]int
	index        []map[string]int
	ambiguous    []map[string]bool
}

// NewEngine indexes the master relation for every rule. The master and the
// data to repair must share attribute names for the rules' attributes; the
// master schema is looked up by name so it may be narrower.
func NewEngine(master *dataset.Relation, dataSchema *dataset.Schema, rs []*Rule) (*Engine, error) {
	e := &Engine{master: master, rules: rs}
	for _, r := range rs {
		masterMatch, masterCopy, err := mapAttrs(dataSchema, master.Schema, r)
		if err != nil {
			return nil, err
		}
		ix := make(map[string]int)
		amb := make(map[string]bool)
		for i, t := range master.Tuples {
			k := t.Key(masterMatch)
			if prev, ok := ix[k]; ok {
				for _, c := range masterCopy {
					if master.Tuples[prev][c] != t[c] {
						amb[k] = true
					}
				}
				continue
			}
			ix[k] = i
		}
		masterVerify := make([]int, len(r.Verify))
		for i, c := range r.Verify {
			name := dataSchema.Attr(c).Name
			mc, ok := master.Schema.Index(name)
			if !ok {
				return nil, fmt.Errorf("rules: %s: master data lacks verify attribute %q", r.Name, name)
			}
			masterVerify[i] = mc
		}
		e.masterCopy = append(e.masterCopy, masterCopy)
		e.masterVerify = append(e.masterVerify, masterVerify)
		e.index = append(e.index, ix)
		e.ambiguous = append(e.ambiguous, amb)
	}
	return e, nil
}

// mapAttrs translates a rule's data-schema columns into master-schema
// columns by attribute name.
func mapAttrs(data, master *dataset.Schema, r *Rule) (match, copyAttrs []int, err error) {
	translate := func(cols []int) ([]int, error) {
		out := make([]int, len(cols))
		for i, c := range cols {
			name := data.Attr(c).Name
			mc, ok := master.Index(name)
			if !ok {
				return nil, fmt.Errorf("rules: %s: master data lacks attribute %q", r.Name, name)
			}
			out[i] = mc
		}
		return out, nil
	}
	match, err = translate(r.Match)
	if err != nil {
		return nil, nil, err
	}
	copyAttrs, err = translate(r.Copy)
	return match, copyAttrs, err
}

// Fix is one applied (or applicable) certain fix.
type Fix struct {
	Rule *Rule
	Cell dataset.Cell
	Old  string
	New  string
}

// Repair applies every rule to every tuple: when the tuple's match
// attributes hit a unique master key, the copy attributes take the master
// values. It returns the repaired copy and the fixes applied.
func (e *Engine) Repair(rel *dataset.Relation) (*dataset.Relation, []Fix) {
	out := rel.Clone()
	var fixes []Fix
	for ri, r := range e.rules {
		for i, t := range out.Tuples {
			k := t.Key(r.Match)
			if e.ambiguous[ri][k] {
				continue
			}
			mi, ok := e.index[ri][k]
			if !ok {
				continue
			}
			verified := true
			for j, c := range r.Verify {
				if t[c] != e.master.Tuples[mi][e.masterVerify[ri][j]] {
					verified = false
					break
				}
			}
			if !verified {
				continue
			}
			for j, c := range r.Copy {
				mv := e.master.Tuples[mi][e.masterCopy[ri][j]]
				if t[c] != mv {
					fixes = append(fixes, Fix{Rule: r, Cell: dataset.Cell{Row: i, Col: c}, Old: t[c], New: mv})
					t[c] = mv
				}
			}
		}
	}
	return out, fixes
}
