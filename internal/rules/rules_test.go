package rules_test

import (
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/gen"
	"ftrepair/internal/rules"
)

func TestNewRuleValidation(t *testing.T) {
	schema := dataset.Strings("Zip", "City", "State")
	if _, err := rules.NewRule(schema, "r", nil, []string{"City"}); err == nil {
		t.Fatal("empty match accepted")
	}
	if _, err := rules.NewRule(schema, "r", []string{"Zip"}, nil); err == nil {
		t.Fatal("empty copy accepted")
	}
	if _, err := rules.NewRule(schema, "r", []string{"Zip"}, []string{"Zip"}); err == nil {
		t.Fatal("overlapping match/copy accepted")
	}
	if _, err := rules.NewRule(schema, "r", []string{"Nope"}, []string{"City"}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if _, err := rules.NewRule(schema, "r", []string{"Zip"}, []string{"City", "State"}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineRepairsFromMaster(t *testing.T) {
	dataSchema := dataset.Strings("Name", "Zip", "City", "State")
	dirty, err := dataset.FromRows(dataSchema, [][]string{
		{"ann", "02134", "Boston", "MA"},
		{"bob", "02134", "Bostn", "NY"},   // both fixable via master
		{"eve", "99999", "Nowhere", "ZZ"}, // no master coverage
	})
	if err != nil {
		t.Fatal(err)
	}
	// Master data is narrower (no Name) and keyed by Zip.
	master, err := dataset.FromRows(dataset.Strings("Zip", "City", "State"), [][]string{
		{"02134", "Boston", "MA"},
		{"10001", "New York", "NY"},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := rules.NewRule(dataSchema, "zip2loc", []string{"Zip"}, []string{"City", "State"})
	if err != nil {
		t.Fatal(err)
	}
	e, err := rules.NewEngine(master, dataSchema, []*rules.Rule{r})
	if err != nil {
		t.Fatal(err)
	}
	out, fixes := e.Repair(dirty)
	if out.Tuples[1][2] != "Boston" || out.Tuples[1][3] != "MA" {
		t.Fatalf("bob unrepaired: %v", out.Tuples[1])
	}
	if out.Tuples[2][2] != "Nowhere" {
		t.Fatalf("uncovered tuple modified: %v", out.Tuples[2])
	}
	if len(fixes) != 2 {
		t.Fatalf("fixes = %v", fixes)
	}
	for _, f := range fixes {
		if f.Rule != r || f.Cell.Row != 1 {
			t.Fatalf("unexpected fix %+v", f)
		}
	}
	// Input untouched.
	if dirty.Tuples[1][2] != "Bostn" {
		t.Fatal("input mutated")
	}
}

func TestEngineSkipsAmbiguousMasterKeys(t *testing.T) {
	schema := dataset.Strings("Zip", "City")
	master, _ := dataset.FromRows(schema, [][]string{
		{"02134", "Boston"},
		{"02134", "Cambridge"}, // same key, different copy value
		{"10001", "New York"},
	})
	r, err := rules.NewRule(schema, "r", []string{"Zip"}, []string{"City"})
	if err != nil {
		t.Fatal(err)
	}
	e, err := rules.NewEngine(master, schema, []*rules.Rule{r})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := dataset.FromRows(schema, [][]string{
		{"02134", "Wrong"},
		{"10001", "Wrong"},
	})
	out, fixes := e.Repair(data)
	if out.Tuples[0][1] != "Wrong" {
		t.Fatal("ambiguous master key applied")
	}
	if out.Tuples[1][1] != "New York" || len(fixes) != 1 {
		t.Fatalf("unique key not applied: %v %v", out.Tuples[1], fixes)
	}
}

func TestEngineMissingMasterAttribute(t *testing.T) {
	dataSchema := dataset.Strings("Zip", "City")
	master, _ := dataset.FromRows(dataset.Strings("Zip"), [][]string{{"02134"}})
	r, err := rules.NewRule(dataSchema, "r", []string{"Zip"}, []string{"City"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rules.NewEngine(master, dataSchema, []*rules.Rule{r}); err == nil {
		t.Fatal("master without the copy attribute accepted")
	}
}

func TestRuleRepairCoverageStory(t *testing.T) {
	// The paper's point: rule-based repair with master data is precise but
	// only reaches tuples whose key attributes are clean and covered. On a
	// dirty HOSP instance with the clean data as master, Zip-keyed rules
	// fix locality attributes but cannot touch errors in Zip itself.
	clean := gen.HOSP{Seed: 51}.Generate(600)
	fds := gen.HOSPFDs(clean.Schema)
	dirty, injections := gen.Inject(clean, fds, 0.04, 52)
	r, err := rules.NewRule(clean.Schema, "zip2loc", []string{"Zip"}, []string{"City", "State", "County"})
	if err != nil {
		t.Fatal(err)
	}
	e, err := rules.NewEngine(clean, dirty.Schema, []*rules.Rule{r})
	if err != nil {
		t.Fatal(err)
	}
	out, fixes := e.Repair(dirty)
	if len(fixes) == 0 {
		t.Fatal("no fixes applied")
	}
	// A fix is only "certain" when the row's key is itself clean: rows with
	// a swapped Zip match the wrong master tuple and get consistently wrong
	// values — the very limitation the paper describes.
	zip := clean.Schema.MustIndex("Zip")
	for _, f := range fixes {
		keyClean := dirty.Tuples[f.Cell.Row][zip] == clean.Tuples[f.Cell.Row][zip]
		if keyClean && out.Get(f.Cell) != clean.Get(f.Cell) {
			t.Fatalf("wrong fix despite clean key: %+v", f)
		}
	}
	// And Zip errors themselves survive (keys are not repairable).
	zipErrors := 0
	for _, inj := range injections {
		if inj.Cell.Col == zip && out.Get(inj.Cell) == inj.Dirty {
			zipErrors++
		}
	}
	if zipErrors == 0 {
		t.Fatal("expected surviving Zip errors — rule repair cannot fix its own keys")
	}
}

func TestVerifyAttributesGateFixes(t *testing.T) {
	schema := dataset.Strings("Zip", "City", "State")
	master, _ := dataset.FromRows(schema, [][]string{
		{"02134", "Boston", "MA"},
		{"10001", "New York", "NY"},
	})
	r, err := rules.NewRule(schema, "r", []string{"Zip"}, []string{"State"})
	if err != nil {
		t.Fatal(err)
	}
	r, err = r.WithVerify(schema, "City")
	if err != nil {
		t.Fatal(err)
	}
	e, err := rules.NewEngine(master, schema, []*rules.Rule{r})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := dataset.FromRows(schema, [][]string{
		{"02134", "Boston", "XX"}, // verified: City agrees -> fix State
		{"10001", "Boston", "XX"}, // corrupted zip: City disagrees -> no fix
	})
	out, fixes := e.Repair(data)
	if out.Tuples[0][2] != "MA" {
		t.Fatalf("verified fix missing: %v", out.Tuples[0])
	}
	if out.Tuples[1][2] != "XX" {
		t.Fatalf("unverified row fixed: %v", out.Tuples[1])
	}
	if len(fixes) != 1 {
		t.Fatalf("fixes = %v", fixes)
	}
	// Verify attribute must exist in the master.
	narrow, _ := dataset.FromRows(dataset.Strings("Zip", "State"), [][]string{{"02134", "MA"}})
	if _, err := rules.NewEngine(narrow, schema, []*rules.Rule{r}); err == nil {
		t.Fatal("master without verify attribute accepted")
	}
	// WithVerify validates names.
	if _, err := r.WithVerify(schema, "Nope"); err == nil {
		t.Fatal("unknown verify attribute accepted")
	}
}
