package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"ftrepair/internal/obs"
)

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes a JSON request body with a size cap and strict fields.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/metrics", s.handleMetricsJSON)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/jobs/{id}/ledger", s.handleJobLedger)
	mux.HandleFunc("GET /v1/explain", s.handleExplain)
	mux.HandleFunc("POST /v1/undo", s.handleUndo)
	mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGetSession)
	mux.HandleFunc("GET /v1/sessions/{id}/relation", s.handleSessionRelation)
	mux.HandleFunc("POST /v1/sessions/{id}/tuples", s.handleAppendTuples)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleCloseSession)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":            true,
		"uptimeSeconds": time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	view := s.metrics.snapshot(time.Since(s.started), s.jobs.gauges(), s.sessions.count())
	writeJSON(w, http.StatusOK, view)
}

// handleMetrics serves the obs default registry in Prometheus text
// exposition format: the whole pipeline's counters and phase histograms
// plus the repaird job/session counters mirrored into the registry.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.metrics.syncGauges(time.Since(s.started), s.jobs.gauges(), s.sessions.count())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default().WritePrometheus(w)
}

// handleMetricsJSON serves the same registry as a JSON snapshot, for
// dashboards that would rather not parse the exposition format.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	s.metrics.syncGauges(time.Since(s.started), s.jobs.gauges(), s.sessions.count())
	writeJSON(w, http.StatusOK, map[string]any{"metrics": obs.Default().Snapshot()})
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if !s.decodeBody(w, r, &spec) {
		return
	}
	prob, err := spec.compile()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid job: %v", err)
		return
	}
	job := s.jobs.add(spec, prob)
	if err := s.pool.submit(job); err != nil {
		job.complete(JobFailed, nil, err.Error())
		code := http.StatusServiceUnavailable
		writeError(w, code, "%v", err)
		return
	}
	s.metrics.jobSubmitted()
	writeJSON(w, http.StatusAccepted, job.View(false))
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.jobs.list()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View(false))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job.View(true))
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if job.Cancel() {
		s.logInfo("job cancel requested", "job", job.id)
	}
	writeJSON(w, http.StatusAccepted, job.View(false))
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var spec SessionSpec
	if !s.decodeBody(w, r, &spec) {
		return
	}
	sess, err := s.sessions.create(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errShuttingDown) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, "invalid session: %v", err)
		return
	}
	s.logInfo("session created", "session", sess.id, "tuples", sess.view().Tuples)
	writeJSON(w, http.StatusCreated, sess.view())
}

func (s *Server) handleListSessions(w http.ResponseWriter, _ *http.Request) {
	sessions := s.sessions.list()
	views := make([]SessionView, 0, len(sessions))
	for _, sess := range sessions {
		views = append(views, sess.view())
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": views})
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	writeJSON(w, http.StatusOK, sess.view())
}

func (s *Server) handleSessionRelation(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	csv, err := sess.relationCSV()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "serializing relation: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	_, _ = w.Write([]byte(csv))
}

// appendRequest is the body of POST /v1/sessions/{id}/tuples.
type appendRequest struct {
	Rows [][]string `json:"rows"`
}

// appendResponse reports per-row outcomes of an append.
type appendResponse struct {
	Results  []AppendedTuple `json:"results"`
	Repaired int             `json:"repaired"`
}

func (s *Server) handleAppendTuples(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	var req appendRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, "rows is empty")
		return
	}
	results, repaired, err := sess.append(r.Context(), req.Rows)
	if err != nil {
		// The batcher rejected the enqueue: session closed underneath us or
		// backpressure outlasted the client's patience.
		writeError(w, http.StatusServiceUnavailable, "append: %v", err)
		return
	}
	s.metrics.sessionAppend(len(req.Rows), repaired)
	writeJSON(w, http.StatusOK, appendResponse{Results: results, Repaired: repaired})
}

func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, ok := s.sessions.remove(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	sess.close()
	s.logInfo("session closed", "session", id)
	writeJSON(w, http.StatusOK, map[string]any{"closed": id})
}
