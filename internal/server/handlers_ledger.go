package server

import (
	"net/http"
	"strconv"
	"strings"

	"ftrepair/internal/dataset"
	"ftrepair/internal/ledger"
)

// ledgerView is the JSON body of GET /v1/jobs/{id}/ledger.
type ledgerView struct {
	Job     string               `json:"job"`
	RunRoot ledger.Hash          `json:"runRoot"`
	Events  []ledger.RepairEvent `json:"events"`
	Batches []ledger.Batch       `json:"batches"`
}

// jobLedger resolves a job id to its attached ledger, writing the HTTP error
// itself when the job or ledger is missing.
func (s *Server) jobLedger(w http.ResponseWriter, id string) (*Job, *ledger.Ledger, *dataset.Relation, bool) {
	job, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return nil, nil, nil, false
	}
	led, repaired := job.Ledger()
	if led == nil {
		writeError(w, http.StatusConflict, "job %s has no ledger yet (state %s)", id, job.State())
		return nil, nil, nil, false
	}
	return job, led, repaired, true
}

// handleJobLedger serves a job's repair ledger: the default JSON view, or
// the self-verifying JSONL dump (?format=jsonl) that cmd/ledgercheck and
// ledger.ReadJSONL consume.
func (s *Server) handleJobLedger(w http.ResponseWriter, r *http.Request) {
	job, led, _, ok := s.jobLedger(w, r.PathValue("id"))
	if !ok {
		return
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = led.WriteJSONL(w)
		return
	}
	writeJSON(w, http.StatusOK, ledgerView{
		Job:     job.id,
		RunRoot: led.RunRoot(),
		Events:  led.Events(),
		Batches: led.Batches(),
	})
}

// explainView is the JSON body of GET /v1/explain: the last event that wrote
// the cell plus its inclusion proof, checkable offline against BatchRoot
// (and, through the chain, RunRoot).
type explainView struct {
	Job       string             `json:"job"`
	Event     ledger.RepairEvent `json:"event"`
	Proof     ledger.Proof       `json:"proof"`
	BatchRoot ledger.Hash        `json:"batchRoot"`
	RunRoot   ledger.Hash        `json:"runRoot"`
	// Verified reports the server-side proof check; clients should re-run
	// VerifyProof themselves rather than trust it.
	Verified bool `json:"verified"`
	// History counts how many ledger events wrote this cell in total (> 1
	// when later batches re-repaired it).
	History int `json:"history"`
}

// latestLedgeredJob returns the most recently submitted job that has a
// ledger attached.
func (s *Server) latestLedgeredJob() (*Job, bool) {
	jobs := s.jobs.list()
	for i := len(jobs) - 1; i >= 0; i-- {
		if led, _ := jobs[i].Ledger(); led != nil {
			return jobs[i], true
		}
	}
	return nil, false
}

// resolveCol turns a col query value (attribute name or numeric index) into
// a column index of the relation.
func resolveCol(rel *dataset.Relation, col string) (int, bool) {
	if n, err := strconv.Atoi(col); err == nil {
		if n >= 0 && n < rel.Schema.Len() {
			return n, true
		}
		return 0, false
	}
	for i := 0; i < rel.Schema.Len(); i++ {
		if strings.EqualFold(rel.Schema.Attr(i).Name, col) {
			return i, true
		}
	}
	return 0, false
}

// handleExplain resolves one repaired cell (?tuple=&col=, col by attribute
// name or index; ?job= optional, defaulting to the latest ledgered job) to
// the ledger event that last wrote it, with the FD / violation edge /
// join-target justification, the cost delta, and an inclusion proof.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id := q.Get("job")
	if id == "" {
		job, ok := s.latestLedgeredJob()
		if !ok {
			writeError(w, http.StatusNotFound, "no job with a ledger; submit a job first")
			return
		}
		id = job.id
	}
	job, led, repaired, ok := s.jobLedger(w, id)
	if !ok {
		return
	}
	row, err := strconv.Atoi(q.Get("tuple"))
	if err != nil || row < 0 {
		writeError(w, http.StatusBadRequest, "tuple must be a row index, got %q", q.Get("tuple"))
		return
	}
	col, ok := resolveCol(repaired, q.Get("col"))
	if !ok {
		writeError(w, http.StatusBadRequest, "col %q names no attribute", q.Get("col"))
		return
	}
	events := led.Events()
	last, history := uint64(0), 0
	for _, e := range events {
		if e.Row == row && e.Col == col {
			last = e.Seq
			history++
		}
	}
	if last == 0 {
		writeError(w, http.StatusNotFound, "cell (tuple %d, %s) was not repaired by job %s",
			row, repaired.Schema.Attr(col).Name, id)
		return
	}
	ev, proof, batch, ok := led.Prove(last)
	if !ok {
		writeError(w, http.StatusInternalServerError, "ledger lost seq %d", last)
		return
	}
	leaf := ledger.EventHash(&ev)
	writeJSON(w, http.StatusOK, explainView{
		Job:       job.id,
		Event:     ev,
		Proof:     proof,
		BatchRoot: batch.Root,
		RunRoot:   led.RunRoot(),
		Verified:  ledger.VerifyProof(leaf, proof, batch.Root),
		History:   history,
	})
}

// undoRequest is the body of POST /v1/undo.
type undoRequest struct {
	// Job names the ledgered job to undo against; empty means the latest.
	Job string `json:"job,omitempty"`
	// Events is how many trailing events to reverse; 0 or negative means
	// all of them (full undo reproduces the pre-repair relation).
	Events int `json:"events,omitempty"`
}

// undoResponse reports a replay-verified undo. The operation is
// non-mutating: the job's stored result is untouched, the reverted relation
// is returned as CSV.
type undoResponse struct {
	Job      string      `json:"job"`
	Reverted int         `json:"reverted"`
	RunRoot  ledger.Hash `json:"runRoot"`
	CSV      string      `json:"csv"`
}

// handleUndo reverses a suffix of a job's ledger over its result relation,
// verifying each event's recorded New value against the cell before
// restoring Old. A mismatch (the relation diverged from the ledger) is a
// 409 and bumps ftrepair_ledger_verify_failures_total.
func (s *Server) handleUndo(w http.ResponseWriter, r *http.Request) {
	var req undoRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	id := req.Job
	if id == "" {
		job, ok := s.latestLedgeredJob()
		if !ok {
			writeError(w, http.StatusNotFound, "no job with a ledger; submit a job first")
			return
		}
		id = job.id
	}
	job, led, repaired, ok := s.jobLedger(w, id)
	if !ok {
		return
	}
	events := led.Events()
	n := req.Events
	if n <= 0 || n > len(events) {
		n = len(events)
	}
	reverted, err := ledger.Undo(repaired, events, n)
	if err != nil {
		writeError(w, http.StatusConflict, "undo: %v", err)
		return
	}
	var buf strings.Builder
	if err := dataset.WriteCSV(&buf, reverted); err != nil {
		writeError(w, http.StatusInternalServerError, "serializing reverted relation: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, undoResponse{
		Job:      job.id,
		Reverted: n,
		RunRoot:  led.RunRoot(),
		CSV:      buf.String(),
	})
}
