package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ftrepair/internal/dataset"
	"ftrepair/internal/ledger"
	"ftrepair/internal/obs"
)

// JobState is the lifecycle state of a repair job.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is executing the repair.
	JobRunning JobState = "running"
	// JobDone: finished successfully; the result is available.
	JobDone JobState = "done"
	// JobFailed: the repair returned an error.
	JobFailed JobState = "failed"
	// JobCanceled: canceled via DELETE or timed out. A partial result may
	// be attached.
	JobCanceled JobState = "canceled"
)

// ChangedCell is one repaired cell in a job result, with attribute name and
// both values for human consumption.
type ChangedCell struct {
	Row  int    `json:"row"`
	Col  int    `json:"col"`
	Attr string `json:"attr"`
	Old  string `json:"old"`
	New  string `json:"new"`
}

// JobResult is the outcome of a completed (or partially completed) job.
type JobResult struct {
	Algorithm string         `json:"algorithm"`
	Cost      float64        `json:"cost"`
	ElapsedMs float64        `json:"elapsedMs"`
	Tuples    int            `json:"tuples"`
	Changed   []ChangedCell  `json:"changed"`
	Stats     map[string]int `json:"stats,omitempty"`
	// CSV is the repaired relation serialized back to CSV.
	CSV string `json:"csv"`
	// FTConsistent and Valid report verification outcomes when the spec
	// requested them (nil otherwise).
	FTConsistent *bool `json:"ftConsistent,omitempty"`
	Valid        *bool `json:"valid,omitempty"`
	// Partial marks results attached to a canceled job: only the work
	// committed before the cancellation is applied.
	Partial bool `json:"partial,omitempty"`
	// Spans summarizes the job's phase trace: where the wall time went
	// (graph build, expansion, target search, apply), per FD and worker.
	Spans []obs.SpanSummary `json:"spans,omitempty"`
}

// JobView is the JSON representation of a job returned by the API.
type JobView struct {
	ID        string     `json:"id"`
	State     JobState   `json:"state"`
	Algorithm string     `json:"algorithm"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
}

// Job is one repair job tracked by the store. All mutable fields are
// guarded by mu; the compiled problem is immutable after submission.
type Job struct {
	id        string
	spec      JobSpec
	prob      *problem
	submitted time.Time

	mu         sync.Mutex
	state      JobState
	started    time.Time
	finished   time.Time
	errMsg     string
	result     *JobResult
	cancelCh   chan struct{}
	cancelOnce sync.Once
	// led is the job's repair ledger (every applied cell with provenance and
	// Merkle commitments); repaired is the result relation the ledger's
	// events replay against. Both are set once at completion and immutable
	// afterwards, so accessors hand them out without copying.
	led      *ledger.Ledger
	repaired *dataset.Relation
}

func newJob(id string, spec JobSpec, prob *problem, now time.Time) *Job {
	return &Job{
		id: id, spec: spec, prob: prob, submitted: now,
		state: JobQueued, cancelCh: make(chan struct{}),
	}
}

// Cancel requests cancellation: queued jobs flip to canceled immediately,
// running jobs get their cancel channel closed and transition when the
// algorithm unwinds. Terminal jobs are unaffected. Reports whether the call
// had any effect.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case JobQueued:
		j.state = JobCanceled
		j.finished = time.Now()
		j.errMsg = "canceled before start"
		j.closeCancel()
		return true
	case JobRunning:
		j.closeCancel()
		return true
	default:
		return false
	}
}

func (j *Job) closeCancel() {
	j.cancelOnce.Do(func() { close(j.cancelCh) })
}

// markRunning transitions queued -> running; returns false when the job was
// canceled while queued (the worker must skip it).
func (j *Job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	j.started = time.Now()
	return true
}

// complete records the terminal state of a run.
func (j *Job) complete(state JobState, res *JobResult, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.finished = time.Now()
	j.result = res
	j.errMsg = errMsg
}

// attachLedger records the finished run's ledger and result relation.
func (j *Job) attachLedger(led *ledger.Ledger, repaired *dataset.Relation) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.led = led
	j.repaired = repaired
}

// Ledger returns the job's ledger and result relation, nil before the job
// reached a terminal state with a result.
func (j *Job) Ledger() (*ledger.Ledger, *dataset.Relation) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.led, j.repaired
}

// View snapshots the job for JSON encoding. withResult controls whether the
// (potentially large) result payload is included.
func (j *Job) View(withResult bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.id,
		State:     j.state,
		Algorithm: j.prob.algo,
		Submitted: j.submitted,
		Error:     j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if withResult {
		v.Result = j.result
	}
	return v
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// jobStore is the in-memory job registry.
type jobStore struct {
	mu   sync.Mutex
	jobs map[string]*Job
	seq  int
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*Job)}
}

func (s *jobStore) add(spec JobSpec, prob *problem) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := newJob(fmt.Sprintf("job-%06d", s.seq), spec, prob, time.Now())
	s.jobs[j.id] = j
	return j
}

func (s *jobStore) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// list returns every job in submission order (ids are sequential).
func (s *jobStore) list() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// gauges counts jobs by state.
func (s *jobStore) gauges() map[JobState]int {
	counts := make(map[JobState]int)
	for _, j := range s.list() {
		counts[j.State()]++
	}
	return counts
}

// cancelAll fires every non-terminal job's cancel channel (shutdown path).
func (s *jobStore) cancelAll() {
	for _, j := range s.list() {
		j.Cancel()
	}
}

// buildResult converts a repair result into the API shape.
func buildResult(prob *problem, res *jobRunOutcome) *JobResult {
	r := res.result
	out := &JobResult{
		Algorithm: r.Algorithm,
		Cost:      r.Cost,
		ElapsedMs: float64(r.Elapsed.Microseconds()) / 1000,
		Tuples:    r.Repaired.Len(),
		Stats:     r.Stats,
		Partial:   res.partial,
	}
	out.Changed = make([]ChangedCell, 0, len(r.Changed))
	for _, c := range r.Changed {
		out.Changed = append(out.Changed, ChangedCell{
			Row:  c.Row,
			Col:  c.Col,
			Attr: prob.rel.Schema.Attr(c.Col).Name,
			Old:  prob.rel.Get(c),
			New:  r.Repaired.Get(c),
		})
	}
	var buf strings.Builder
	if err := dataset.WriteCSV(&buf, r.Repaired); err == nil {
		out.CSV = buf.String()
	}
	return out
}
