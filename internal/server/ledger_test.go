package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"ftrepair/internal/dataset"
	"ftrepair/internal/ledger"
)

// doneLedgeredJob submits the HOSP job and waits for completion, returning
// the job id and its ledger view.
func doneLedgeredJob(t *testing.T, base string) (string, ledgerView) {
	t.Helper()
	v := submitJob(t, base, JobSpec{
		CSV: hospCSV(), FDs: []string{"City -> State"},
		Tau: 0.3, WL: 0.7, WR: 0.3,
	})
	done := pollJob(t, base, v.ID, 30*time.Second)
	if done.State != JobDone {
		t.Fatalf("job finished %s: %s", done.State, done.Error)
	}
	resp, body := doJSON(t, http.MethodGet, base+"/v1/jobs/"+v.ID+"/ledger")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET ledger: %d %s", resp.StatusCode, body)
	}
	var lv ledgerView
	if err := json.Unmarshal(body, &lv); err != nil {
		t.Fatal(err)
	}
	return v.ID, lv
}

// TestJobLedgerEndpoint fetches a finished job's ledger in both formats and
// verifies the JSONL dump offline — the same check cmd/ledgercheck runs.
func TestJobLedgerEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id, lv := doneLedgeredJob(t, ts.URL)
	if lv.Job != id || len(lv.Events) == 0 || len(lv.Batches) == 0 {
		t.Fatalf("ledger view: %d events, %d batches for job %s", len(lv.Events), len(lv.Batches), lv.Job)
	}
	if lv.RunRoot == (ledger.Hash{}) {
		t.Fatal("run root is zero")
	}

	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/ledger?format=jsonl")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET ledger jsonl: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("jsonl content type %q", ct)
	}
	dump, err := ledger.ReadJSONL(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if err := dump.Verify(); err != nil {
		t.Fatal(err)
	}
	if dump.RunRoot != lv.RunRoot {
		t.Fatal("jsonl run root differs from the JSON view")
	}

	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/nope/ledger"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %d", resp.StatusCode)
	}
}

// TestExplainEndpoint resolves a repaired cell to its justifying event with
// a proof that checks out client-side against the returned batch root.
func TestExplainEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id, lv := doneLedgeredJob(t, ts.URL)
	ev0 := lv.Events[0]

	// Address the cell by attribute name, letting job default to the latest
	// ledgered job.
	resp, body := doJSON(t, http.MethodGet,
		ts.URL+"/v1/explain?tuple="+strconv.Itoa(ev0.Row)+"&col="+ev0.Attr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET explain: %d %s", resp.StatusCode, body)
	}
	var ex explainView
	if err := json.Unmarshal(body, &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Job != id || ex.Event.Row != ev0.Row || ex.Event.Col != ev0.Col || ex.History < 1 {
		t.Fatalf("explain resolved the wrong event: %+v", ex)
	}
	if !ex.Verified {
		t.Fatal("server-side proof check failed")
	}
	// Client-side verification from the response alone.
	leaf := ledger.EventHash(&ex.Event)
	if !ledger.VerifyProof(leaf, ex.Proof, ex.BatchRoot) {
		t.Fatal("returned proof does not verify against the batch root")
	}
	if ex.RunRoot != lv.RunRoot {
		t.Fatal("explain run root differs from the ledger view")
	}

	// A never-repaired cell is a 404.
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/explain?job="+id+"&tuple=0&col=0"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("clean cell: %d", resp.StatusCode)
	}
	// An unknown column is a 400.
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/explain?job="+id+"&tuple=0&col=Bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus column: %d", resp.StatusCode)
	}
}

// TestUndoEndpoint reverses the whole ledger and expects the job's input
// back, byte for byte, without mutating the stored result.
func TestUndoEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id, lv := doneLedgeredJob(t, ts.URL)

	resp, body := postJSON(t, ts.URL+"/v1/undo", undoRequest{Job: id})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST undo: %d %s", resp.StatusCode, body)
	}
	var ur undoResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Job != id || ur.Reverted != len(lv.Events) {
		t.Fatalf("undo reverted %d of %d events", ur.Reverted, len(lv.Events))
	}
	reverted, err := dataset.ReadCSV(strings.NewReader(ur.CSV), "")
	if err != nil {
		t.Fatal(err)
	}
	input, err := dataset.ReadCSV(strings.NewReader(hospCSV()), "")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := dataset.Diff(reverted, input)
	if err != nil || len(cells) != 0 {
		t.Fatalf("undo CSV deviates from the input at %v (%v)", cells, err)
	}

	// The stored result must be untouched: a second full undo still works.
	resp, _ = postJSON(t, ts.URL+"/v1/undo", undoRequest{Job: id, Events: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second undo: %d", resp.StatusCode)
	}
}
