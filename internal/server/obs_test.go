package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ftrepair/internal/obs"
)

// The obs default registry is process-global, so these tests assert presence
// and deltas rather than exact values: other tests in the package (and prior
// repairs in the same binary) contribute to the same counters.

// TestMetricsEndpoint runs one job and checks the Prometheus exposition
// carries both the pipeline counters and the repaird mirrors.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	before := obs.Default().Counter("repaird_jobs_submitted_total", "").Value()

	v := submitJob(t, ts.URL, JobSpec{CSV: hospCSV(), FDs: []string{"City -> State"}, Algorithm: "GreedyS"})
	final := pollJob(t, ts.URL, v.ID, 10e9)
	if final.State != JobDone {
		t.Fatalf("job state = %s (%s)", final.State, final.Error)
	}

	resp, body := doJSON(t, http.MethodGet, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"ftrepair_graph_builds_total",
		"ftrepair_graph_edges_built_total",
		"ftrepair_phase_duration_seconds_bucket",
		`ftrepair_repairs_total{algorithm="GreedyS"}`,
		"repaird_jobs_submitted_total",
		"repaird_uptime_seconds",
		`repaird_jobs_finished_total{state="done"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q\n%s", want, text[:min(len(text), 2000)])
		}
	}
	after := obs.Default().Counter("repaird_jobs_submitted_total", "").Value()
	if after-before < 1 {
		t.Fatalf("jobs-submitted counter delta = %d, want >= 1", after-before)
	}
}

// TestMetricsJSONEndpoint checks the JSON snapshot variant decodes and
// carries at least one counter.
func TestMetricsJSONEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: %d", resp.StatusCode)
	}
	var doc struct {
		Metrics []obs.MetricSnapshot `json:"metrics"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Metrics) == 0 {
		t.Fatal("empty metrics snapshot")
	}
}

// TestJobResultCarriesSpans asserts a finished job's result includes the
// phase-span summaries from its per-job trace.
func TestJobResultCarriesSpans(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	v := submitJob(t, ts.URL, JobSpec{CSV: hospCSV(), FDs: []string{"City -> State"}, Algorithm: "GreedyM"})
	final := pollJob(t, ts.URL, v.ID, 10e9)
	if final.State != JobDone {
		t.Fatalf("job state = %s (%s)", final.State, final.Error)
	}
	if final.Result == nil || len(final.Result.Spans) == 0 {
		t.Fatal("job result has no spans")
	}
	phases := make(map[obs.Phase]bool)
	for _, sp := range final.Result.Spans {
		phases[sp.Phase] = true
	}
	if !phases[obs.PhaseGraphBuild] {
		t.Fatalf("no graphbuild span; phases = %v", phases)
	}
}

// TestSessionProgressEvents appends two batches and expects two ordered
// progress events in the session view.
func TestSessionProgressEvents(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/sessions", SessionSpec{CSV: hospCSV(), FDs: []string{"City -> State"}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST session: %d %s", resp.StatusCode, body)
	}
	var sv SessionView
	if err := json.Unmarshal(body, &sv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/sessions/"+sv.ID+"/tuples",
			appendRequest{Rows: [][]string{{"BOSTON", "MA"}}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d: %d %s", i, resp.StatusCode, body)
		}
	}
	_, body = doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+sv.ID)
	if err := json.Unmarshal(body, &sv); err != nil {
		t.Fatal(err)
	}
	if len(sv.Events) != 2 {
		t.Fatalf("events = %d, want 2 (%+v)", len(sv.Events), sv.Events)
	}
	if sv.Events[0].Seq != 1 || sv.Events[1].Seq != 2 {
		t.Fatalf("event seqs = %d,%d, want 1,2", sv.Events[0].Seq, sv.Events[1].Seq)
	}
	if sv.Events[1].TotalTuples <= sv.Events[0].TotalTuples {
		t.Fatalf("totalTuples not increasing: %+v", sv.Events)
	}
}

// TestPprofGating: the profiling endpoints exist only with EnablePprof.
func TestPprofGating(t *testing.T) {
	_, off := newTestServer(t, Config{Workers: 1})
	resp, _ := doJSON(t, http.MethodGet, off.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without opt-in: %d, want 404", resp.StatusCode)
	}
	_, on := newTestServer(t, Config{Workers: 1, EnablePprof: true})
	resp, body := doJSON(t, http.MethodGet, on.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with opt-in: %d %s", resp.StatusCode, body)
	}
}

// TestStatusRecorderForwardsFlush guards the Flusher passthrough: wrapping
// a flushable writer must not hide the interface from handlers.
func TestStatusRecorderForwardsFlush(t *testing.T) {
	rr := httptest.NewRecorder()
	var w http.ResponseWriter = &statusRecorder{ResponseWriter: rr, status: http.StatusOK}
	f, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("statusRecorder does not expose http.Flusher")
	}
	f.Flush()
	if !rr.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
}

// TestRequestIDHeader checks every response carries an X-Request-ID and a
// client-supplied id is echoed back.
func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz")
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("no X-Request-ID header")
	}
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "client-abc")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "client-abc" {
		t.Fatalf("X-Request-ID = %q, want client-abc", got)
	}
}
