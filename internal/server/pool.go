package server

import (
	"errors"
	"sync"
	"time"

	"ftrepair/internal/ledger"
	"ftrepair/internal/obs"
	"ftrepair/internal/repair"
)

// errQueueFull is returned by submit when the bounded queue is at capacity;
// the HTTP layer maps it to 503.
var errQueueFull = errors.New("server: job queue is full")

// errShuttingDown is returned by submit after Shutdown started.
var errShuttingDown = errors.New("server: shutting down")

// pool executes jobs on a fixed set of worker goroutines reading from a
// bounded queue.
type pool struct {
	mu     sync.Mutex
	closed bool
	queue  chan *Job
	wg     sync.WaitGroup
}

func newPool(workers, depth int, exec func(*Job)) *pool {
	p := &pool{queue: make(chan *Job, depth)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.queue {
				exec(j)
			}
		}()
	}
	return p
}

// submit enqueues a job without blocking; a full queue or a closed pool is
// an error the caller surfaces to the client.
func (p *pool) submit(j *Job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errShuttingDown
	}
	select {
	case p.queue <- j:
		return nil
	default:
		return errQueueFull
	}
}

// close stops intake; workers drain the queue and exit.
func (p *pool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
}

// wait blocks until every worker exited or the deadline passes.
func (p *pool) wait(timeout time.Duration) bool {
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// jobRunOutcome pairs a repair result with whether it is partial (canceled
// mid-run).
type jobRunOutcome struct {
	result  *repair.Result
	partial bool
}

// execJob is the worker body: runs one job to a terminal state and records
// metrics. Cancellation while queued is honored by markRunning.
func (s *Server) execJob(j *Job) {
	if !j.markRunning() {
		s.metrics.jobFinished(JobCanceled, j.prob.algo, 0, 0)
		return
	}
	var cancel <-chan struct{} = j.cancelCh
	if j.spec.TimeoutMs > 0 {
		cancel = withDeadline(j.cancelCh, time.Duration(j.spec.TimeoutMs)*time.Millisecond)
	}
	// Every job gets its own trace; the summaries ride along in the job
	// result so clients can see where the wall time went without any
	// server-side profiling. CloseOpen is the safety net for error paths
	// that unwound before a span's deferred End ran.
	tr := obs.NewTrace("job:" + j.id)
	// Every job also gets its own ledger: the run commits applied cell
	// repairs into it, and the explain/undo/ledger endpoints read it back.
	led := ledger.New()
	start := time.Now()
	res, err := j.prob.run(cancel, tr, led)
	elapsed := time.Since(start)
	tr.CloseOpen()

	switch {
	case err == nil:
		jr := buildResult(j.prob, &jobRunOutcome{result: res})
		jr.Spans = tr.Summaries()
		s.verifyIfRequested(j, jr, res)
		j.attachLedger(led, res.Repaired)
		j.complete(JobDone, jr, "")
		s.metrics.jobFinished(JobDone, j.prob.algo, elapsed, len(res.Changed))
		s.metrics.addDistCache(res.Stats)
	case errors.Is(err, repair.ErrCanceled):
		var jr *JobResult
		changed := 0
		if res != nil {
			jr = buildResult(j.prob, &jobRunOutcome{result: res, partial: true})
			jr.Spans = tr.Summaries()
			changed = len(res.Changed)
			s.metrics.addDistCache(res.Stats)
			j.attachLedger(led, res.Repaired)
		}
		j.complete(JobCanceled, jr, err.Error())
		s.metrics.jobFinished(JobCanceled, j.prob.algo, elapsed, changed)
	default:
		j.complete(JobFailed, nil, err.Error())
		s.metrics.jobFinished(JobFailed, j.prob.algo, elapsed, 0)
	}
}

// verifyIfRequested fills the FTConsistent/Valid fields when the spec asked
// for verification.
func (s *Server) verifyIfRequested(j *Job, jr *JobResult, res *repair.Result) {
	if !j.spec.Verify {
		return
	}
	ft := repair.VerifyFTConsistent(res.Repaired, j.prob.set, j.prob.cfg) == nil
	valid := repair.VerifyValid(j.prob.rel, res.Repaired, j.prob.set) == nil
	jr.FTConsistent = &ft
	jr.Valid = &valid
	if !ft || !valid {
		s.logInfo("job verification failed", "job", j.id, "ftConsistent", ft, "valid", valid)
	}
}

// withDeadline derives a channel that fires when either the parent cancel
// channel closes or the timeout elapses.
func withDeadline(parent <-chan struct{}, d time.Duration) <-chan struct{} {
	out := make(chan struct{})
	go func() {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-parent:
		case <-t.C:
		}
		close(out)
	}()
	return out
}
