// Package server implements repaird, the repair service daemon: an
// HTTP/JSON API over the cost-based repair library. It offers three
// workloads on one process:
//
//   - batch jobs: POST /v1/jobs submits a dirty relation plus FDs; a
//     bounded worker pool executes the repair; GET /v1/jobs/{id} polls
//     status and result; DELETE /v1/jobs/{id} cancels a queued or running
//     job through the repair.Options cancellation hook.
//   - streaming sessions: POST /v1/sessions builds repair.Incremental
//     state over a base relation; POST /v1/sessions/{id}/tuples appends
//     tuples online, repairing each against the accepted patterns.
//   - operations: GET /healthz liveness, GET /v1/stats counters, request
//     logging, and graceful shutdown with in-flight job draining.
//
// Everything is stdlib-only (net/http, encoding/json).
package server

import (
	"context"
	"log"
	"net/http"
	"runtime"
	"time"
)

// Config tunes the server.
type Config struct {
	// Workers sizes the job worker pool; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the job queue; 0 means 256. A full queue rejects
	// submissions with 503.
	QueueDepth int
	// MaxBodyBytes caps request bodies; 0 means 64 MiB.
	MaxBodyBytes int64
	// Logger receives request and lifecycle logs; nil silences them.
	Logger *log.Logger
}

// Server is the repair service: job store, worker pool, session registry
// and metrics behind an http.Handler.
type Server struct {
	cfg      Config
	jobs     *jobStore
	sessions *sessionRegistry
	metrics  *metrics
	pool     *pool
	mux      *http.ServeMux
	started  time.Time
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	s := &Server{
		cfg:      cfg,
		jobs:     newJobStore(),
		sessions: newSessionRegistry(),
		metrics:  newMetrics(),
		started:  time.Now(),
	}
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, s.execJob)
	s.mux = s.routes()
	return s
}

// Handler returns the HTTP surface with request logging applied.
func (s *Server) Handler() http.Handler {
	return s.logRequests(s.mux)
}

// Shutdown drains the service: intake stops (submissions get 503), queued
// and running jobs are given until ctx's deadline to finish, then every
// outstanding job is canceled through its cancellation hook and the pool is
// awaited briefly so workers observe the cancel.
func (s *Server) Shutdown(ctx context.Context) error {
	s.pool.close()
	deadline := 5 * time.Second
	if d, ok := ctx.Deadline(); ok {
		deadline = time.Until(d)
	}
	if deadline > 0 && s.pool.wait(deadline) {
		s.logf("shutdown: drained cleanly")
		return nil
	}
	s.logf("shutdown: draining timed out; canceling outstanding jobs")
	s.jobs.cancelAll()
	if !s.pool.wait(5 * time.Second) {
		return context.DeadlineExceeded
	}
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// statusRecorder captures the response code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.logf("%s %s %d %v", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
	})
}
