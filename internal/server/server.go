// Package server implements repaird, the repair service daemon: an
// HTTP/JSON API over the cost-based repair library. It offers three
// workloads on one process:
//
//   - batch jobs: POST /v1/jobs submits a dirty relation plus FDs; a
//     bounded worker pool executes the repair; GET /v1/jobs/{id} polls
//     status and result; DELETE /v1/jobs/{id} cancels a queued or running
//     job through the repair.Options cancellation hook.
//   - streaming sessions: POST /v1/sessions builds an incr.Engine over a
//     base relation (sharded by violation-graph component, with warm
//     per-shard state); POST /v1/sessions/{id}/tuples enqueues rows into
//     the session's batcher, which coalesces concurrent appends and
//     flushes only the touched shards through the repair machinery.
//   - operations: GET /healthz liveness, GET /v1/stats counters,
//     GET /metrics Prometheus exposition (GET /v1/metrics for the JSON
//     snapshot), opt-in /debug/pprof/*, structured request logging with
//     request ids, and graceful shutdown with in-flight job draining.
//
// Everything is stdlib-only (net/http, encoding/json, log/slog).
package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"
)

// Config tunes the server.
type Config struct {
	// Workers sizes the job worker pool; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the job queue; 0 means 256. A full queue rejects
	// submissions with 503.
	QueueDepth int
	// MaxBodyBytes caps request bodies; 0 means 64 MiB.
	MaxBodyBytes int64
	// Logger receives structured request and lifecycle logs; nil silences
	// them.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose internals and can run CPU
	// profiles on demand, so operators opt in per process.
	EnablePprof bool
}

// Server is the repair service: job store, worker pool, session registry
// and metrics behind an http.Handler.
type Server struct {
	cfg      Config
	jobs     *jobStore
	sessions *sessionRegistry
	metrics  *metrics
	pool     *pool
	mux      *http.ServeMux
	started  time.Time
	reqSeq   atomic.Uint64
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	s := &Server{
		cfg:      cfg,
		jobs:     newJobStore(),
		sessions: newSessionRegistry(),
		metrics:  newMetrics(),
		started:  time.Now(),
	}
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, s.execJob)
	s.mux = s.routes()
	return s
}

// Handler returns the HTTP surface with request logging applied.
func (s *Server) Handler() http.Handler {
	return s.logRequests(s.mux)
}

// Shutdown drains the service: intake stops (submissions get 503), queued
// and running jobs are given until ctx's deadline to finish, then every
// outstanding job is canceled through its cancellation hook and the pool is
// awaited briefly so workers observe the cancel.
func (s *Server) Shutdown(ctx context.Context) error {
	s.pool.close()
	s.sessions.closeAll()
	deadline := 5 * time.Second
	if d, ok := ctx.Deadline(); ok {
		deadline = time.Until(d)
	}
	if deadline > 0 && s.pool.wait(deadline) {
		s.logInfo("shutdown: drained cleanly")
		return nil
	}
	s.logInfo("shutdown: draining timed out; canceling outstanding jobs")
	s.jobs.cancelAll()
	if !s.pool.wait(5 * time.Second) {
		return context.DeadlineExceeded
	}
	return nil
}

// logInfo emits one structured lifecycle log line (no-op without a Logger).
func (s *Server) logInfo(msg string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info(msg, args...)
	}
}

// statusRecorder captures the response code for the request log. It must
// forward the optional ResponseWriter interfaces it would otherwise mask:
// streaming handlers probe for http.Flusher, and a wrapper that hides it
// would silently buffer session responses behind the logging middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer's http.Flusher, when present.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logRequests assigns every request a process-unique id (echoed in the
// X-Request-ID response header so clients can quote it back) and logs one
// structured line per request.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := requestID(r, s.reqSeq.Add(1))
		w.Header().Set("X-Request-ID", reqID)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		if s.cfg.Logger != nil {
			s.cfg.Logger.Info("request",
				"id", reqID,
				"method", r.Method,
				"path", r.URL.Path,
				"status", rec.status,
				"durMs", float64(time.Since(start).Microseconds())/1000,
				"remote", r.RemoteAddr,
			)
		}
	})
}

// requestID returns the client-supplied X-Request-ID when present (so
// distributed callers can correlate) and a sequential req-NNNNNN otherwise.
func requestID(r *http.Request, seq uint64) string {
	if id := r.Header.Get("X-Request-ID"); id != "" && len(id) <= 128 {
		return id
	}
	return fmt.Sprintf("req-%06d", seq)
}
