package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/repair"
)

// newTestServer starts a Server over httptest. The logger stays nil so test
// output is clean.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func doJSON(t *testing.T, method, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// hospCSV builds a HOSP-style City,State instance: clean pattern blocks
// plus one close typo per city that FT-violates its source at tau 0.3.
func hospCSV() string {
	var b strings.Builder
	b.WriteString("City,State\n")
	clean := [][2]string{{"BOSTON", "MA"}, {"CHICAGO", "IL"}, {"SEATTLE", "WA"}}
	for _, c := range clean {
		for i := 0; i < 20; i++ {
			fmt.Fprintf(&b, "%s,%s\n", c[0], c[1])
		}
	}
	b.WriteString("BOSTN,MA\n")
	b.WriteString("CHICGO,IL\n")
	b.WriteString("SEATLE,WA\n")
	return b.String()
}

// hospConstraints mirrors the job spec constraints for local verification.
func hospConstraints(t *testing.T, csv string) (*dataset.Relation, *fd.Set, *fd.DistConfig) {
	t.Helper()
	rel, err := dataset.ReadCSV(strings.NewReader(csv), "")
	if err != nil {
		t.Fatal(err)
	}
	f, err := fd.Parse(rel.Schema, "City -> State")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := fd.NewDistConfig(rel, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	set, err := fd.NewSet([]*fd.FD{f}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return rel, set, cfg
}

// pathCSV builds the numeric path-graph instance that makes ExactS
// arbitrarily slow (see internal/repair cancel tests).
func pathCSV(n int) string {
	var b strings.Builder
	b.WriteString("A,B\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,x\n", i)
	}
	return b.String()
}

// pollJob polls a job until it reaches a terminal state or the deadline.
func pollJob(t *testing.T, base, id string, deadline time.Duration) JobView {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		resp, body := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job: %d %s", resp.StatusCode, body)
		}
		var v JobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		switch v.State {
		case JobDone, JobFailed, JobCanceled:
			return v
		}
		if time.Now().After(stop) {
			t.Fatalf("job %s still %s after %v", id, v.State, deadline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func submitJob(t *testing.T, base string, spec JobSpec) JobView {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST job: %d %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	csv := hospCSV()
	v := submitJob(t, ts.URL, JobSpec{
		CSV: csv, FDs: []string{"City -> State"},
		Tau: 0.3, WL: 0.7, WR: 0.3, Verify: true,
	})
	if v.State != JobQueued && v.State != JobRunning {
		t.Fatalf("fresh job state = %s", v.State)
	}
	final := pollJob(t, ts.URL, v.ID, 30*time.Second)
	if final.State != JobDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	if final.Result == nil {
		t.Fatal("done job has no result")
	}
	if final.Result.FTConsistent == nil || !*final.Result.FTConsistent {
		t.Error("server-side verification: repair not FT-consistent")
	}
	if final.Result.Valid == nil || !*final.Result.Valid {
		t.Error("server-side verification: repair not closed-world valid")
	}
	if len(final.Result.Changed) == 0 {
		t.Error("dirty instance repaired zero cells")
	}
	// Independent client-side verification of the returned CSV.
	orig, set, cfg := hospConstraints(t, csv)
	repaired, err := dataset.ReadCSV(strings.NewReader(final.Result.CSV), "")
	if err != nil {
		t.Fatal(err)
	}
	if err := repair.VerifyFTConsistent(repaired, set, cfg); err != nil {
		t.Errorf("returned CSV not FT-consistent: %v", err)
	}
	if err := repair.VerifyValid(orig, repaired, set); err != nil {
		t.Errorf("returned CSV not closed-world valid: %v", err)
	}
}

func TestParallelJobsAllConsistent(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	const n = 8
	csv := hospCSV()
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			algo := []string{"GreedyM", "ApproM"}[i%2]
			v := submitJob(t, ts.URL, JobSpec{
				CSV: csv, FDs: []string{"City -> State"},
				Algorithm: algo, Verify: true,
			})
			ids[i] = v.ID
		}()
	}
	wg.Wait()
	_, set, cfg := hospConstraints(t, csv)
	for _, id := range ids {
		final := pollJob(t, ts.URL, id, 30*time.Second)
		if final.State != JobDone {
			t.Fatalf("job %s ended %s (%s)", id, final.State, final.Error)
		}
		repaired, err := dataset.ReadCSV(strings.NewReader(final.Result.CSV), "")
		if err != nil {
			t.Fatal(err)
		}
		if err := repair.VerifyFTConsistent(repaired, set, cfg); err != nil {
			t.Errorf("job %s: %v", id, err)
		}
	}
}

func TestCancelRunningExactS(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	n := 150
	v := submitJob(t, ts.URL, JobSpec{
		CSV: pathCSV(n), Types: "numeric,string",
		FDs: []string{"A -> B"}, Algorithm: "ExactS",
		Tau: 0.005, WL: 0.5, WR: 0.5,
	})
	// Wait for the worker to pick it up so the cancel exercises the
	// in-algorithm hook, not the queued fast path.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+v.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job: %d %s", resp.StatusCode, body)
		}
		var cur JobView
		if err := json.Unmarshal(body, &cur); err != nil {
			t.Fatal(err)
		}
		if cur.State == JobRunning {
			break
		}
		if cur.State != JobQueued {
			t.Fatalf("job reached %s before cancel (instance too easy?)", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	canceledAt := time.Now()
	resp, body := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE job: %d %s", resp.StatusCode, body)
	}
	final := pollJob(t, ts.URL, v.ID, 5*time.Second)
	latency := time.Since(canceledAt)
	if final.State != JobCanceled {
		t.Fatalf("job ended %s, want canceled", final.State)
	}
	if latency > time.Second {
		t.Errorf("cancel took %v, want under ~1s", latency)
	}
	if final.Result == nil {
		t.Error("canceled job carries no partial result")
	} else if !final.Result.Partial {
		t.Error("canceled job's result not marked partial")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// Occupy the single worker with a slow exact search.
	running := submitJob(t, ts.URL, JobSpec{
		CSV: pathCSV(150), Types: "numeric,string",
		FDs: []string{"A -> B"}, Algorithm: "ExactS",
		Tau: 0.005, WL: 0.5, WR: 0.5,
	})
	queued := submitJob(t, ts.URL, JobSpec{
		CSV: hospCSV(), FDs: []string{"City -> State"},
	})
	resp, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE queued job: %d", resp.StatusCode)
	}
	final := pollJob(t, ts.URL, queued.ID, 2*time.Second)
	if final.State != JobCanceled {
		t.Fatalf("queued job ended %s, want canceled", final.State)
	}
	// Unblock the worker for a clean test exit.
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID)
	pollJob(t, ts.URL, running.ID, 5*time.Second)
}

func TestSessionConcurrentAppends(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/sessions", SessionSpec{
		CSV: hospCSV(), FDs: []string{"City -> State"},
		Tau: 0.3, WL: 0.7, WR: 0.3,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST session: %d %s", resp.StatusCode, body)
	}
	var sv SessionView
	if err := json.Unmarshal(body, &sv); err != nil {
		t.Fatal(err)
	}
	if sv.BaseRepairedCells == 0 {
		t.Error("dirty base was not repaired at session creation")
	}

	const goroutines, perG = 8, 25
	rows := [][]string{
		{"BOSTON", "MA"}, {"CHICAGO", "IL"}, {"SEATTLE", "WA"},
		{"BOSTONN", "MA"}, {"CHICAG", "IL"},
	}
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				row := rows[(g+i)%len(rows)]
				resp, body := postJSON(t, ts.URL+"/v1/sessions/"+sv.ID+"/tuples",
					appendRequest{Rows: [][]string{row}})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("append: %d %s", resp.StatusCode, body)
					return
				}
				var ar appendResponse
				if err := json.Unmarshal(body, &ar); err != nil {
					errs <- err.Error()
					return
				}
				if len(ar.Results) != 1 || ar.Results[0].Error != "" {
					errs <- fmt.Sprintf("append result: %+v", ar.Results)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+sv.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET session: %d", resp.StatusCode)
	}
	var after SessionView
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if want := goroutines * perG; after.Accepted != want {
		t.Errorf("accepted = %d, want %d", after.Accepted, want)
	}
	if after.Repaired == 0 {
		t.Error("no appended tuple needed repair despite injected typos")
	}

	// The maintained relation must be FT-consistent throughout.
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+sv.ID+"/relation")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET relation: %d", resp.StatusCode)
	}
	rel, err := dataset.ReadCSV(strings.NewReader(string(body)), "")
	if err != nil {
		t.Fatal(err)
	}
	_, set, cfg := hospConstraints(t, hospCSV())
	if err := repair.VerifyFTConsistent(rel, set, cfg); err != nil {
		t.Errorf("session relation not FT-consistent: %v", err)
	}

	resp, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+sv.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE session: %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+sv.ID)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("closed session still reachable: %d", resp.StatusCode)
	}
}

func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	v := submitJob(t, ts.URL, JobSpec{
		CSV: pathCSV(150), Types: "numeric,string",
		FDs: []string{"A -> B"}, Algorithm: "ExactS",
		Tau: 0.005, WL: 0.5, WR: 0.5, TimeoutMs: 100,
	})
	final := pollJob(t, ts.URL, v.ID, 10*time.Second)
	if final.State != JobCanceled {
		t.Fatalf("timed-out job ended %s, want canceled", final.State)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"no data", JobSpec{FDs: []string{"A -> B"}}},
		{"no fds", JobSpec{CSV: "A,B\n1,2\n"}},
		{"bad algorithm", JobSpec{CSV: "A,B\n1,2\n", FDs: []string{"A -> B"}, Algorithm: "Quantum"}},
		{"bad fd", JobSpec{CSV: "A,B\n1,2\n", FDs: []string{"A -> Nope"}}},
		{"single-FD algo, many FDs", JobSpec{CSV: "A,B,C\n1,2,3\n", FDs: []string{"A -> B", "B -> C"}, Algorithm: "ExactS"}},
		{"csv and rows", JobSpec{CSV: "A\n1\n", Header: []string{"A"}, Rows: [][]string{{"1"}}, FDs: []string{"A -> A"}}},
	}
	for _, tc := range cases {
		resp, _ := postJSON(t, ts.URL+"/v1/jobs", tc.spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/job-999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

func TestHealthzAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var hz map[string]any
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if ok, _ := hz["ok"].(bool); !ok {
		t.Fatalf("healthz body: %s", body)
	}

	v := submitJob(t, ts.URL, JobSpec{CSV: hospCSV(), FDs: []string{"City -> State"}})
	pollJob(t, ts.URL, v.ID, 30*time.Second)

	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var stats StatsView
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.JobsSubmitted != 1 {
		t.Errorf("jobsSubmitted = %d, want 1", stats.JobsSubmitted)
	}
	if stats.Jobs[JobDone] != 1 {
		t.Errorf("done gauge = %d, want 1", stats.Jobs[JobDone])
	}
	if st := stats.Algorithms["GreedyM"]; st == nil || st.Count != 1 {
		t.Errorf("GreedyM latency counter missing: %+v", stats.Algorithms)
	}
	if stats.CellsRepaired == 0 {
		t.Error("cellsRepaired = 0 after a repairing job")
	}
	// The repair run queried string distances, so the aggregated
	// distance-cache counters must have moved.
	if stats.DistCacheHits+stats.DistCacheMisses == 0 {
		t.Error("distance-cache counters did not move after a repairing job")
	}
}

func TestRowsInputAndInferredTypes(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	v := submitJob(t, ts.URL, JobSpec{
		Header: []string{"City", "State"},
		Rows: [][]string{
			{"BOSTON", "MA"}, {"BOSTON", "MA"}, {"BOSTON", "MA"},
			{"BOSTN", "MA"},
		},
		FDs: []string{"City -> State"}, Verify: true,
	})
	final := pollJob(t, ts.URL, v.ID, 30*time.Second)
	if final.State != JobDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	if final.Result.FTConsistent == nil || !*final.Result.FTConsistent {
		t.Error("rows-input job not FT-consistent")
	}
}

func TestShutdownCancelsInFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	v := submitJob(t, ts.URL, JobSpec{
		CSV: pathCSV(150), Types: "numeric,string",
		FDs: []string{"A -> B"}, Algorithm: "ExactS",
		Tau: 0.005, WL: 0.5, WR: 0.5,
	})
	// Wait until it runs.
	deadline := time.Now().Add(5 * time.Second)
	for {
		job, _ := s.jobs.get(v.ID)
		if job.State() == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	job, _ := s.jobs.get(v.ID)
	if st := job.State(); st != JobCanceled {
		t.Fatalf("in-flight job ended %s after shutdown, want canceled", st)
	}
	// Submissions after shutdown are rejected.
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", JobSpec{CSV: "A,B\nx,y\n", FDs: []string{"A -> B"}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit: %d, want 503", resp.StatusCode)
	}
}
