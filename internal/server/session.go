package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/repair"
)

// session is one long-lived streaming repair: an FT-consistent base
// relation plus repair.Incremental state that keeps it consistent as tuples
// arrive. Incremental is not safe for concurrent use, so every operation
// holds mu — appends from concurrent clients serialize here.
type session struct {
	id      string
	created time.Time

	mu  sync.Mutex
	inc *repair.Incremental
	set *fd.Set
	cfg *fd.DistConfig
	// baseRepaired counts cells the base repair changed at creation.
	baseRepaired int
	baseAlgo     string
	// events is a bounded ring of recent append batches (progress stream);
	// eventSeq numbers them monotonically so a poller can detect gaps after
	// the ring wrapped.
	events   []ProgressEvent
	eventSeq int
}

// progressRingCap bounds the per-session event ring; a poller that falls
// more than this many batches behind sees a gap in Seq.
const progressRingCap = 64

// ProgressEvent describes one append batch processed by a session.
type ProgressEvent struct {
	// Seq numbers events monotonically from 1; a gap between consecutive
	// events means the ring wrapped between polls.
	Seq  int       `json:"seq"`
	Time time.Time `json:"time"`
	// Tuples and Repaired count the batch's rows and how many were repaired;
	// TotalTuples is the relation size after the batch.
	Tuples      int     `json:"tuples"`
	Repaired    int     `json:"repaired"`
	TotalTuples int     `json:"totalTuples"`
	DurMs       float64 `json:"durMs"`
}

// SessionView is the JSON representation of a session.
type SessionView struct {
	ID      string    `json:"id"`
	Created time.Time `json:"created"`
	// Tuples is the current relation size (base + accepted appends).
	Tuples int `json:"tuples"`
	// Accepted and Repaired count appended tuples and how many of them
	// needed repair.
	Accepted int `json:"accepted"`
	Repaired int `json:"repaired"`
	// BaseRepairedCells counts cells changed to make the base consistent;
	// BaseAlgorithm names the algorithm that did it ("" when the base was
	// already consistent).
	BaseRepairedCells int    `json:"baseRepairedCells"`
	BaseAlgorithm     string `json:"baseAlgorithm,omitempty"`
	// Events is the session's recent append batches, oldest first (at most
	// the last 64).
	Events []ProgressEvent `json:"events,omitempty"`
}

// AppendedTuple is the per-row outcome of a tuple append.
type AppendedTuple struct {
	// Values is the accepted (possibly repaired) tuple.
	Values []string `json:"values"`
	// Repaired reports whether the tuple was modified on the way in.
	Repaired bool `json:"repaired"`
	// Error carries a per-row failure (wrong arity); the row was skipped.
	Error string `json:"error,omitempty"`
}

func (s *session) view() SessionView {
	s.mu.Lock()
	defer s.mu.Unlock()
	accepted, repaired := s.inc.Stats()
	events := make([]ProgressEvent, len(s.events))
	copy(events, s.events)
	return SessionView{
		ID:                s.id,
		Created:           s.created,
		Tuples:            s.inc.Relation().Len(),
		Accepted:          accepted,
		Repaired:          repaired,
		BaseRepairedCells: s.baseRepaired,
		BaseAlgorithm:     s.baseAlgo,
		Events:            events,
	}
}

// append feeds rows through the incremental repair, returning per-row
// outcomes and how many rows were repaired.
func (s *session) append(rows [][]string) ([]AppendedTuple, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	out := make([]AppendedTuple, 0, len(rows))
	repaired := 0
	for _, row := range rows {
		accepted, changed, err := s.inc.Add(dataset.Tuple(row))
		if err != nil {
			out = append(out, AppendedTuple{Error: err.Error()})
			continue
		}
		if changed {
			repaired++
		}
		out = append(out, AppendedTuple{Values: accepted, Repaired: changed})
	}
	s.eventSeq++
	s.events = append(s.events, ProgressEvent{
		Seq:         s.eventSeq,
		Time:        start,
		Tuples:      len(rows),
		Repaired:    repaired,
		TotalTuples: s.inc.Relation().Len(),
		DurMs:       float64(time.Since(start).Microseconds()) / 1000,
	})
	if len(s.events) > progressRingCap {
		s.events = s.events[len(s.events)-progressRingCap:]
	}
	return out, repaired
}

// relationCSV serializes the session's current relation.
func (s *session) relationCSV() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf strings.Builder
	if err := dataset.WriteCSV(&buf, s.inc.Relation()); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// sessionRegistry tracks live sessions under a mutex.
type sessionRegistry struct {
	mu       sync.Mutex
	sessions map[string]*session
	seq      int
}

func newSessionRegistry() *sessionRegistry {
	return &sessionRegistry{sessions: make(map[string]*session)}
}

// create compiles a session spec: the base relation is repaired first when
// it is not already FT-consistent, so NewIncremental always starts from a
// consistent state.
func (r *sessionRegistry) create(spec SessionSpec) (*session, error) {
	algo, err := canonicalAlgo(spec.Algorithm)
	if err != nil {
		return nil, err
	}
	rel, err := loadRelation(spec.CSV, spec.Header, spec.Rows, spec.Types)
	if err != nil {
		return nil, err
	}
	set, cfg, err := compileConstraints(rel, spec.FDs, spec.Tau, spec.AutoTau, spec.WL, spec.WR)
	if err != nil {
		return nil, err
	}
	if (algo == "ExactS" || algo == "GreedyS") && len(set.FDs) != 1 {
		return nil, fmt.Errorf("%s repairs a single FD, spec has %d", algo, len(set.FDs))
	}
	base := rel
	baseRepaired := 0
	baseAlgo := ""
	if repair.VerifyFTConsistent(rel, set, cfg) != nil {
		prob := &problem{rel: rel, set: set, cfg: cfg, algo: algo}
		res, err := prob.run(nil, nil)
		if err != nil {
			return nil, fmt.Errorf("repairing session base: %w", err)
		}
		base = res.Repaired
		baseRepaired = len(res.Changed)
		baseAlgo = res.Algorithm
	}
	inc, err := repair.NewIncremental(base, set, cfg)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	s := &session{
		id:      fmt.Sprintf("sess-%06d", r.seq),
		created: time.Now(),
		inc:     inc, set: set, cfg: cfg,
		baseRepaired: baseRepaired,
		baseAlgo:     baseAlgo,
	}
	r.sessions[s.id] = s
	return s, nil
}

func (r *sessionRegistry) get(id string) (*session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	return s, ok
}

func (r *sessionRegistry) remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sessions[id]; !ok {
		return false
	}
	delete(r.sessions, id)
	return true
}

func (r *sessionRegistry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

func (r *sessionRegistry) list() []*session {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*session, 0, len(r.sessions))
	for _, s := range r.sessions {
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}
