package server

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ftrepair/internal/fd"
	"ftrepair/internal/incr"
)

// session is one long-lived streaming repair: an incr.Engine holding the
// sharded warm state, fronted by an incr.Batcher so concurrent POSTs
// coalesce into flushes instead of serializing per tuple. The engine has
// its own fine-grained locking — view() and relationCSV() read through it
// without waiting for an in-flight append batch; the session only guards
// its progress-event ring with a small mutex.
type session struct {
	id      string
	created time.Time

	eng *incr.Engine
	bat *incr.Batcher
	set *fd.Set
	cfg *fd.DistConfig
	// baseRepaired counts cells the initial flush changed to make the base
	// consistent.
	baseRepaired int
	baseAlgo     string

	// evMu guards only the bounded ring of recent flushes; eventSeq numbers
	// them monotonically so a poller can detect gaps after the ring wrapped.
	evMu     sync.Mutex
	events   []ProgressEvent
	eventSeq int
}

// progressRingCap bounds the per-session event ring; a poller that falls
// more than this many batches behind sees a gap in Seq.
const progressRingCap = 64

// ProgressEvent describes one flushed append batch.
type ProgressEvent struct {
	// Seq numbers events monotonically from 1; a gap between consecutive
	// events means the ring wrapped between polls.
	Seq  int       `json:"seq"`
	Time time.Time `json:"time"`
	// Tuples and Repaired count the batch's rows and how many were repaired;
	// TotalTuples is the relation size after the batch.
	Tuples      int     `json:"tuples"`
	Repaired    int     `json:"repaired"`
	TotalTuples int     `json:"totalTuples"`
	DurMs       float64 `json:"durMs"`
	// FlushReason is what triggered the flush: size, interval, or close.
	FlushReason string `json:"flushReason,omitempty"`
	// ShardsTouched and MaxShardRows describe the batch's blast radius: how
	// many shards it dirtied and the largest one's row count.
	ShardsTouched int `json:"shardsTouched,omitempty"`
	MaxShardRows  int `json:"maxShardRows,omitempty"`
}

// SessionView is the JSON representation of a session.
type SessionView struct {
	ID      string    `json:"id"`
	Created time.Time `json:"created"`
	// Tuples is the current relation size (base + accepted appends).
	Tuples int `json:"tuples"`
	// Accepted and Repaired count appended tuples and how many of them
	// needed repair.
	Accepted int `json:"accepted"`
	Repaired int `json:"repaired"`
	// Batches counts engine flushes (including the base flush); Shards is
	// the live shard population.
	Batches int `json:"batches"`
	Shards  int `json:"shards"`
	// BaseRepairedCells counts cells changed to make the base consistent;
	// BaseAlgorithm names the algorithm that did it ("" when the base was
	// already consistent).
	BaseRepairedCells int    `json:"baseRepairedCells"`
	BaseAlgorithm     string `json:"baseAlgorithm,omitempty"`
	// Events is the session's recent append batches, oldest first (at most
	// the last 64).
	Events []ProgressEvent `json:"events,omitempty"`
}

// AppendedTuple is the per-row outcome of a tuple append.
type AppendedTuple struct {
	// Values is the accepted (possibly repaired) tuple.
	Values []string `json:"values"`
	// Repaired reports whether the tuple was modified on the way in.
	Repaired bool `json:"repaired"`
	// Error carries a per-row failure (wrong arity); the row was skipped.
	Error string `json:"error,omitempty"`
}

// view snapshots the session without blocking behind an in-flight batch:
// engine stats are read under the engine's state read-lock, events under
// the small ring mutex.
func (s *session) view() SessionView {
	st := s.eng.Stats()
	s.evMu.Lock()
	events := make([]ProgressEvent, len(s.events))
	copy(events, s.events)
	s.evMu.Unlock()
	return SessionView{
		ID:                s.id,
		Created:           s.created,
		Tuples:            st.Rows,
		Accepted:          st.Accepted,
		Repaired:          st.Repaired,
		Batches:           st.Batches,
		Shards:            st.Shards,
		BaseRepairedCells: s.baseRepaired,
		BaseAlgorithm:     s.baseAlgo,
		Events:            events,
	}
}

// onFlush records one flushed batch in the progress ring; registered as
// the batcher's OnFlush callback, so it fires exactly once per flush no
// matter how many requests the batch coalesced.
func (s *session) onFlush(br *incr.BatchResult) {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	s.eventSeq++
	s.events = append(s.events, ProgressEvent{
		Seq:           s.eventSeq,
		Time:          time.Now().Add(-br.Elapsed),
		Tuples:        len(br.Rows),
		Repaired:      br.Repaired,
		TotalTuples:   br.TotalRows,
		DurMs:         float64(br.Elapsed.Microseconds()) / 1000,
		FlushReason:   br.Reason,
		ShardsTouched: br.ShardsTouched,
		MaxShardRows:  br.MaxShardRows,
	})
	if len(s.events) > progressRingCap {
		s.events = s.events[len(s.events)-progressRingCap:]
	}
}

// append enqueues rows and waits for their flush, returning per-row
// outcomes and how many rows were repaired. Concurrent callers coalesce
// into shared batches instead of serializing per tuple.
func (s *session) append(ctx context.Context, rows [][]string) ([]AppendedTuple, int, error) {
	res, err := s.bat.Enqueue(ctx, rows)
	if err != nil {
		return nil, 0, err
	}
	out := make([]AppendedTuple, 0, len(res.Rows))
	repaired := 0
	for _, rr := range res.Rows {
		if rr.Err != nil {
			out = append(out, AppendedTuple{Error: rr.Err.Error()})
			continue
		}
		if rr.Repaired {
			repaired++
		}
		out = append(out, AppendedTuple{Values: rr.Values, Repaired: rr.Repaired})
	}
	return out, repaired, res.Err
}

// relationCSV serializes the session's current relation; it reads under
// the engine's state lock and never waits for a flush to finish.
func (s *session) relationCSV() (string, error) {
	var buf strings.Builder
	if err := s.eng.WriteCSV(&buf); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// close drains and stops the session's batcher.
func (s *session) close() { s.bat.Close() }

// sessionRegistry tracks live sessions under a mutex.
type sessionRegistry struct {
	mu       sync.Mutex
	sessions map[string]*session
	seq      int
}

func newSessionRegistry() *sessionRegistry {
	return &sessionRegistry{sessions: make(map[string]*session)}
}

// create compiles a session spec and builds its engine; the engine's
// initial flush repairs the base relation when it is not already
// FT-consistent.
func (r *sessionRegistry) create(spec SessionSpec) (*session, error) {
	algo, err := canonicalAlgo(spec.Algorithm)
	if err != nil {
		return nil, err
	}
	rel, err := loadRelation(spec.CSV, spec.Header, spec.Rows, spec.Types)
	if err != nil {
		return nil, err
	}
	set, cfg, err := compileConstraints(rel, spec.FDs, spec.Tau, spec.AutoTau, spec.WL, spec.WR)
	if err != nil {
		return nil, err
	}
	eng, initRes, err := incr.NewEngine(rel, set, cfg, incr.Options{Algorithm: algo})
	if err != nil {
		return nil, err
	}
	baseAlgo := ""
	if initRes.ChangedCells > 0 {
		baseAlgo = algo
	}
	s := &session{
		created: time.Now(),
		eng:     eng, set: set, cfg: cfg,
		baseRepaired: initRes.ChangedCells,
		baseAlgo:     baseAlgo,
	}
	maxDelay := 5 * time.Millisecond
	if spec.MaxDelayMs > 0 {
		maxDelay = time.Duration(spec.MaxDelayMs) * time.Millisecond
	}
	s.bat = incr.NewBatcher(eng, incr.BatcherConfig{
		MaxBatch:   spec.MaxBatch,
		MaxDelay:   maxDelay,
		MaxPending: spec.MaxPending,
		OnFlush:    s.onFlush,
	})
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	s.id = fmt.Sprintf("sess-%06d", r.seq)
	r.sessions[s.id] = s
	return s, nil
}

func (r *sessionRegistry) get(id string) (*session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	return s, ok
}

// remove unregisters a session and returns it so the caller can close it
// outside the registry lock.
func (r *sessionRegistry) remove(id string) (*session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	if !ok {
		return nil, false
	}
	delete(r.sessions, id)
	return s, true
}

func (r *sessionRegistry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

func (r *sessionRegistry) list() []*session {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*session, 0, len(r.sessions))
	for _, s := range r.sessions {
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// closeAll drains every session's batcher (server shutdown).
func (r *sessionRegistry) closeAll() {
	for _, s := range r.list() {
		s.close()
	}
}
