package server

import (
	"fmt"
	"strings"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/ledger"
	"ftrepair/internal/obs"
	"ftrepair/internal/profile"
	"ftrepair/internal/repair"
)

// JobSpec is the JSON body of POST /v1/jobs: the dirty data (inline CSV or
// header+rows), the FD set, and the repair configuration. Zero values take
// the documented defaults, matching the ftrepair CLI.
type JobSpec struct {
	// CSV is the input relation as CSV text with a header row. Mutually
	// exclusive with Header/Rows.
	CSV string `json:"csv,omitempty"`
	// Header and Rows carry the relation inline instead of CSV.
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows,omitempty"`
	// Types is a comma-separated attribute type spec aligned with the
	// header (string|numeric). Empty means inferred from the data.
	Types string `json:"types,omitempty"`
	// FDs are dependency specs like "City,Street -> District" (required).
	FDs []string `json:"fds"`
	// Tau is the FT-violation threshold for every FD (default 0.3);
	// AutoTau derives one per FD with the sudden-gap heuristic instead.
	Tau     float64 `json:"tau,omitempty"`
	AutoTau bool    `json:"autoTau,omitempty"`
	// WL and WR are the LHS/RHS distance weights (default 0.7/0.3; must
	// sum to 1 when set).
	WL float64 `json:"wl,omitempty"`
	WR float64 `json:"wr,omitempty"`
	// Algorithm is one of ExactS, GreedyS, ExactM, ApproM, GreedyM
	// (case-insensitive; default GreedyM).
	Algorithm string `json:"algorithm,omitempty"`
	// Tuning knobs forwarded to repair.Options.
	MaxNodes       int  `json:"maxNodes,omitempty"`
	MaxMISPerFD    int  `json:"maxMisPerFd,omitempty"`
	Parallel       int  `json:"parallel,omitempty"`
	DisablePruning bool `json:"disablePruning,omitempty"`
	// TimeoutMs cancels the job after this many milliseconds of run time
	// (0 means no deadline). A timed-out job reports state "canceled".
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// Verify, when true, runs VerifyFTConsistent and VerifyValid on the
	// repaired relation and reports the outcome in the result. Off by
	// default: verification is quadratic in the number of patterns.
	Verify bool `json:"verify,omitempty"`
}

// SessionSpec is the JSON body of POST /v1/sessions. The base relation is
// repaired with Algorithm first when it is not already FT-consistent, so the
// session always starts from a consistent state.
type SessionSpec struct {
	CSV       string     `json:"csv,omitempty"`
	Header    []string   `json:"header,omitempty"`
	Rows      [][]string `json:"rows,omitempty"`
	Types     string     `json:"types,omitempty"`
	FDs       []string   `json:"fds"`
	Tau       float64    `json:"tau,omitempty"`
	AutoTau   bool       `json:"autoTau,omitempty"`
	WL        float64    `json:"wl,omitempty"`
	WR        float64    `json:"wr,omitempty"`
	Algorithm string     `json:"algorithm,omitempty"`
	// Streaming-ingest knobs: appends enqueue into a batcher that flushes on
	// MaxBatch rows or MaxDelayMs milliseconds (whichever first) and pushes
	// back once MaxPending rows are queued. Zero values take the batcher
	// defaults (MaxBatch 256, MaxPending 4×MaxBatch) with a 5ms MaxDelay.
	MaxBatch   int `json:"maxBatch,omitempty"`
	MaxDelayMs int `json:"maxDelayMs,omitempty"`
	MaxPending int `json:"maxPending,omitempty"`
}

// problem is a compiled job: the parsed relation, constraint set and
// distance model, ready to run.
type problem struct {
	rel  *dataset.Relation
	set  *fd.Set
	cfg  *fd.DistConfig
	algo string
	opts repair.Options
}

// Default repair configuration, matching the ftrepair CLI flags.
const (
	defaultTau = 0.3
	defaultWL  = 0.7
	defaultWR  = 0.3
)

// canonicalAlgo normalizes an algorithm name, defaulting to GreedyM.
func canonicalAlgo(name string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "greedym":
		return "GreedyM", nil
	case "exacts":
		return "ExactS", nil
	case "greedys":
		return "GreedyS", nil
	case "exactm":
		return "ExactM", nil
	case "approm":
		return "ApproM", nil
	default:
		return "", fmt.Errorf("unknown algorithm %q", name)
	}
}

// buildSchema assembles a schema from a header and an optional type spec.
func buildSchema(header []string, types string) (*dataset.Schema, error) {
	attrs := make([]dataset.Attribute, len(header))
	for i, name := range header {
		attrs[i] = dataset.Attribute{Name: name, Type: dataset.String}
	}
	if types != "" {
		parts := strings.Split(types, ",")
		if len(parts) != len(header) {
			return nil, fmt.Errorf("types lists %d entries, header has %d", len(parts), len(header))
		}
		for i, p := range parts {
			switch strings.ToLower(strings.TrimSpace(p)) {
			case "", "string", "s", "str":
				attrs[i].Type = dataset.String
			case "numeric", "n", "num", "number", "float":
				attrs[i].Type = dataset.Numeric
			default:
				return nil, fmt.Errorf("unknown attribute type %q", p)
			}
		}
	}
	return dataset.NewSchema(attrs...)
}

// loadRelation parses the data half of a spec: CSV text or header+rows.
func loadRelation(csv string, header []string, rows [][]string, types string) (*dataset.Relation, error) {
	switch {
	case csv != "" && len(rows) > 0:
		return nil, fmt.Errorf("provide either csv or rows, not both")
	case csv != "":
		rel, err := dataset.ReadCSV(strings.NewReader(csv), types)
		if err != nil {
			return nil, err
		}
		if types == "" {
			rel = profile.Retype(rel)
		}
		return rel, nil
	case len(rows) > 0:
		if len(header) == 0 {
			return nil, fmt.Errorf("rows requires a header")
		}
		schema, err := buildSchema(header, types)
		if err != nil {
			return nil, err
		}
		rel, err := dataset.FromRows(schema, rows)
		if err != nil {
			return nil, err
		}
		if types == "" {
			rel = profile.Retype(rel)
		}
		return rel, nil
	default:
		return nil, fmt.Errorf("no input data: provide csv or header+rows")
	}
}

// compileConstraints parses FD specs and derives the distance model and
// per-FD thresholds over rel.
func compileConstraints(rel *dataset.Relation, fdSpecs []string, tau float64, autoTau bool, wl, wr float64) (*fd.Set, *fd.DistConfig, error) {
	if len(fdSpecs) == 0 {
		return nil, nil, fmt.Errorf("at least one FD is required")
	}
	parsed := make([]*fd.FD, len(fdSpecs))
	for i, spec := range fdSpecs {
		f, err := fd.Parse(rel.Schema, spec)
		if err != nil {
			return nil, nil, err
		}
		parsed[i] = f
	}
	if fd.FloatEq(wl, 0) && fd.FloatEq(wr, 0) {
		wl, wr = defaultWL, defaultWR
	}
	cfg, err := fd.NewDistConfig(rel, wl, wr)
	if err != nil {
		return nil, nil, err
	}
	if fd.FloatEq(tau, 0) {
		tau = defaultTau
	}
	taus := make([]float64, len(parsed))
	for i, f := range parsed {
		if autoTau {
			taus[i] = fd.SelectTau(rel, f, cfg, fd.TauOptions{Fallback: tau})
		} else {
			taus[i] = tau
		}
	}
	set, err := fd.NewSet(parsed, taus...)
	if err != nil {
		return nil, nil, err
	}
	return set, cfg, nil
}

// compile validates a job spec into a runnable problem.
func (spec *JobSpec) compile() (*problem, error) {
	algo, err := canonicalAlgo(spec.Algorithm)
	if err != nil {
		return nil, err
	}
	rel, err := loadRelation(spec.CSV, spec.Header, spec.Rows, spec.Types)
	if err != nil {
		return nil, err
	}
	set, cfg, err := compileConstraints(rel, spec.FDs, spec.Tau, spec.AutoTau, spec.WL, spec.WR)
	if err != nil {
		return nil, err
	}
	if (algo == "ExactS" || algo == "GreedyS") && len(set.FDs) != 1 {
		return nil, fmt.Errorf("%s repairs a single FD, spec has %d", algo, len(set.FDs))
	}
	return &problem{
		rel: rel, set: set, cfg: cfg, algo: algo,
		opts: repair.Options{
			MaxNodes:       spec.MaxNodes,
			MaxMISPerFD:    spec.MaxMISPerFD,
			Parallel:       spec.Parallel,
			DisablePruning: spec.DisablePruning,
		},
	}, nil
}

// run executes the compiled problem with the given cancellation channel, an
// optional trace collecting phase spans, and an optional ledger sink
// receiving the applied cell repairs (nil disables either).
func (p *problem) run(cancel <-chan struct{}, tr *obs.Trace, sink ledger.Sink) (*repair.Result, error) {
	opts := p.opts
	opts.Cancel = cancel
	opts.Trace = tr
	opts.Ledger = sink
	switch p.algo {
	case "ExactS":
		return repair.ExactS(p.rel, p.set.FDs[0], p.cfg, p.set.Tau[0], opts)
	case "GreedyS":
		return repair.GreedyS(p.rel, p.set.FDs[0], p.cfg, p.set.Tau[0], opts)
	case "ExactM":
		return repair.ExactM(p.rel, p.set, p.cfg, opts)
	case "ApproM":
		return repair.ApproM(p.rel, p.set, p.cfg, opts)
	default:
		return repair.GreedyM(p.rel, p.set, p.cfg, opts)
	}
}
