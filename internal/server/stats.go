package server

import (
	"sync"
	"time"

	"ftrepair/internal/obs"
)

// AlgoStat aggregates latency for one algorithm.
type AlgoStat struct {
	Count   int     `json:"count"`
	TotalMs float64 `json:"totalMs"`
	MaxMs   float64 `json:"maxMs"`
	MeanMs  float64 `json:"meanMs"`
}

// StatsView is the JSON body of GET /v1/stats.
type StatsView struct {
	UptimeSeconds  float64          `json:"uptimeSeconds"`
	Jobs           map[JobState]int `json:"jobs"`
	JobsSubmitted  int              `json:"jobsSubmitted"`
	CellsRepaired  int              `json:"cellsRepaired"`
	Sessions       int              `json:"sessions"`
	SessionTuples  int              `json:"sessionTuples"`
	SessionRepairs int              `json:"sessionRepairs"`
	// DistCacheHits/Misses aggregate the distance-cache counters reported by
	// finished jobs (the "distCacheHits"/"distCacheMisses" Stats entries).
	DistCacheHits   int `json:"distCacheHits"`
	DistCacheMisses int `json:"distCacheMisses"`
	// DistPlaneHits/Misses split the cache traffic above into the
	// distance-plane fast path versus sharded-map fall-throughs (the
	// "distPlaneHits"/"distPlaneMisses" Stats entries).
	DistPlaneHits   int                  `json:"distPlaneHits"`
	DistPlaneMisses int                  `json:"distPlaneMisses"`
	Algorithms      map[string]*AlgoStat `json:"algorithms"`
}

// metrics collects operational counters under one mutex; every counter is
// incremented on job/session completion paths, far from the hot loops. The
// same events are mirrored into the obs default registry so GET /metrics
// exposes them next to the pipeline counters; the distance-cache totals are
// deliberately NOT mirrored here because repair's finish() already flushes
// them into ftrepair_distcache_*_total.
type metrics struct {
	mu             sync.Mutex
	jobsSubmitted  int
	cellsRepaired  int
	sessionTuples  int
	sessionRepairs int
	distCacheHits  int
	distCacheMiss  int
	distPlaneHits  int
	distPlaneMiss  int
	perAlgo        map[string]*AlgoStat

	obsJobsSubmitted  *obs.Counter
	obsCellsRepaired  *obs.Counter
	obsSessionTuples  *obs.Counter
	obsSessionRepairs *obs.Counter
	obsUptime         *obs.Gauge
	obsSessionsOpen   *obs.Gauge
}

func newMetrics() *metrics {
	reg := obs.Default()
	return &metrics{
		perAlgo:           make(map[string]*AlgoStat),
		obsJobsSubmitted:  reg.Counter("repaird_jobs_submitted_total", "Repair jobs accepted by POST /v1/jobs."),
		obsCellsRepaired:  reg.Counter("repaird_cells_repaired_total", "Cells changed by completed jobs."),
		obsSessionTuples:  reg.Counter("repaird_session_tuples_total", "Tuples appended to streaming sessions."),
		obsSessionRepairs: reg.Counter("repaird_session_repairs_total", "Appended tuples that needed an online repair."),
		obsUptime:         reg.Gauge("repaird_uptime_seconds", "Seconds since the server started."),
		obsSessionsOpen:   reg.Gauge("repaird_sessions_open", "Streaming sessions currently open."),
	}
}

func (m *metrics) jobSubmitted() {
	m.mu.Lock()
	m.jobsSubmitted++
	m.mu.Unlock()
	m.obsJobsSubmitted.Inc()
}

func (m *metrics) jobFinished(state JobState, algo string, elapsed time.Duration, cellsRepaired int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if state == JobDone || state == JobCanceled {
		m.cellsRepaired += cellsRepaired
		m.obsCellsRepaired.AddInt(cellsRepaired)
	}
	if state == JobDone {
		st := m.perAlgo[algo]
		if st == nil {
			st = &AlgoStat{}
			m.perAlgo[algo] = st
		}
		ms := float64(elapsed.Microseconds()) / 1000
		st.Count++
		st.TotalMs += ms
		if ms > st.MaxMs {
			st.MaxMs = ms
		}
	}
	obs.Default().Counter("repaird_jobs_finished_total",
		"Jobs finished, by terminal state.",
		obs.Label{Key: "state", Value: string(state)}).Inc()
}

// addDistCache accumulates the distance-cache counters a finished job
// reported in its repair Stats map.
func (m *metrics) addDistCache(stats map[string]int) {
	if stats == nil {
		return
	}
	m.mu.Lock()
	m.distCacheHits += stats["distCacheHits"]
	m.distCacheMiss += stats["distCacheMisses"]
	m.distPlaneHits += stats["distPlaneHits"]
	m.distPlaneMiss += stats["distPlaneMisses"]
	m.mu.Unlock()
}

func (m *metrics) sessionAppend(tuples, repaired int) {
	m.mu.Lock()
	m.sessionTuples += tuples
	m.sessionRepairs += repaired
	m.mu.Unlock()
	m.obsSessionTuples.AddInt(tuples)
	m.obsSessionRepairs.AddInt(repaired)
}

// syncGauges refreshes the point-in-time gauges in the obs registry just
// before an exposition; counters flow in as events happen, but uptime and
// the job/session population only exist as snapshots.
func (m *metrics) syncGauges(uptime time.Duration, jobs map[JobState]int, sessions int) {
	m.obsUptime.Set(uptime.Seconds())
	m.obsSessionsOpen.Set(float64(sessions))
	reg := obs.Default()
	for state, n := range jobs {
		reg.Gauge("repaird_jobs", "Jobs currently in the store, by state.",
			obs.Label{Key: "state", Value: string(state)}).Set(float64(n))
	}
}

// snapshot merges the counters with the caller-supplied gauges.
func (m *metrics) snapshot(uptime time.Duration, jobs map[JobState]int, sessions int) StatsView {
	m.mu.Lock()
	defer m.mu.Unlock()
	algos := make(map[string]*AlgoStat, len(m.perAlgo))
	for name, st := range m.perAlgo {
		cp := *st
		if cp.Count > 0 {
			cp.MeanMs = cp.TotalMs / float64(cp.Count)
		}
		algos[name] = &cp
	}
	return StatsView{
		UptimeSeconds:   uptime.Seconds(),
		Jobs:            jobs,
		JobsSubmitted:   m.jobsSubmitted,
		CellsRepaired:   m.cellsRepaired,
		Sessions:        sessions,
		SessionTuples:   m.sessionTuples,
		SessionRepairs:  m.sessionRepairs,
		DistCacheHits:   m.distCacheHits,
		DistCacheMisses: m.distCacheMiss,
		DistPlaneHits:   m.distPlaneHits,
		DistPlaneMisses: m.distPlaneMiss,
		Algorithms:      algos,
	}
}
