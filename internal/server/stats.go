package server

import (
	"sync"
	"time"
)

// AlgoStat aggregates latency for one algorithm.
type AlgoStat struct {
	Count   int     `json:"count"`
	TotalMs float64 `json:"totalMs"`
	MaxMs   float64 `json:"maxMs"`
	MeanMs  float64 `json:"meanMs"`
}

// StatsView is the JSON body of GET /v1/stats.
type StatsView struct {
	UptimeSeconds  float64          `json:"uptimeSeconds"`
	Jobs           map[JobState]int `json:"jobs"`
	JobsSubmitted  int              `json:"jobsSubmitted"`
	CellsRepaired  int              `json:"cellsRepaired"`
	Sessions       int              `json:"sessions"`
	SessionTuples  int              `json:"sessionTuples"`
	SessionRepairs int              `json:"sessionRepairs"`
	// DistCacheHits/Misses aggregate the distance-cache counters reported by
	// finished jobs (the "distCacheHits"/"distCacheMisses" Stats entries).
	DistCacheHits   int                  `json:"distCacheHits"`
	DistCacheMisses int                  `json:"distCacheMisses"`
	Algorithms      map[string]*AlgoStat `json:"algorithms"`
}

// metrics collects operational counters under one mutex; every counter is
// incremented on job/session completion paths, far from the hot loops.
type metrics struct {
	mu             sync.Mutex
	jobsSubmitted  int
	cellsRepaired  int
	sessionTuples  int
	sessionRepairs int
	distCacheHits  int
	distCacheMiss  int
	perAlgo        map[string]*AlgoStat
}

func newMetrics() *metrics {
	return &metrics{perAlgo: make(map[string]*AlgoStat)}
}

func (m *metrics) jobSubmitted() {
	m.mu.Lock()
	m.jobsSubmitted++
	m.mu.Unlock()
}

func (m *metrics) jobFinished(state JobState, algo string, elapsed time.Duration, cellsRepaired int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if state == JobDone || state == JobCanceled {
		m.cellsRepaired += cellsRepaired
	}
	if state == JobDone {
		st := m.perAlgo[algo]
		if st == nil {
			st = &AlgoStat{}
			m.perAlgo[algo] = st
		}
		ms := float64(elapsed.Microseconds()) / 1000
		st.Count++
		st.TotalMs += ms
		if ms > st.MaxMs {
			st.MaxMs = ms
		}
	}
}

// addDistCache accumulates the distance-cache counters a finished job
// reported in its repair Stats map.
func (m *metrics) addDistCache(stats map[string]int) {
	if stats == nil {
		return
	}
	m.mu.Lock()
	m.distCacheHits += stats["distCacheHits"]
	m.distCacheMiss += stats["distCacheMisses"]
	m.mu.Unlock()
}

func (m *metrics) sessionAppend(tuples, repaired int) {
	m.mu.Lock()
	m.sessionTuples += tuples
	m.sessionRepairs += repaired
	m.mu.Unlock()
}

// snapshot merges the counters with the caller-supplied gauges.
func (m *metrics) snapshot(uptime time.Duration, jobs map[JobState]int, sessions int) StatsView {
	m.mu.Lock()
	defer m.mu.Unlock()
	algos := make(map[string]*AlgoStat, len(m.perAlgo))
	for name, st := range m.perAlgo {
		cp := *st
		if cp.Count > 0 {
			cp.MeanMs = cp.TotalMs / float64(cp.Count)
		}
		algos[name] = &cp
	}
	return StatsView{
		UptimeSeconds:   uptime.Seconds(),
		Jobs:            jobs,
		JobsSubmitted:   m.jobsSubmitted,
		CellsRepaired:   m.cellsRepaired,
		Sessions:        sessions,
		SessionTuples:   m.sessionTuples,
		SessionRepairs:  m.sessionRepairs,
		DistCacheHits:   m.distCacheHits,
		DistCacheMisses: m.distCacheMiss,
		Algorithms:      algos,
	}
}
