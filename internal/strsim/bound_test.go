package strsim

import (
	"math/rand"
	"testing"
)

func TestMinDistByLengthKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "xyz", 0},
		{"a", "", 1},
		{"", "abcd", 1},
		{"ab", "abcd", 0.5},
		{"日本語", "日本", 1.0 / 3},
	}
	for _, c := range cases {
		if got := MinDistByLength(c.a, c.b); got != c.want {
			t.Errorf("MinDistByLength(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := MinDistByLength(c.b, c.a); got != c.want {
			t.Errorf("MinDistByLength(%q,%q) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestMinDistByLengthIsLowerBound(t *testing.T) {
	// The length gap lower-bounds both normalized edit flavors: an edit
	// script between strings of lengths la and lb needs at least |la-lb|
	// insertions or deletions. (It is NOT a bound for the q-gram Jaccard
	// distance, which is why the cache's pre-filter skips that flavor.)
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		a := randomWord(r, r.Intn(12))
		b := randomWord(r, r.Intn(12))
		lb := MinDistByLength(a, b)
		if ne := NormalizedEdit(a, b); lb > ne {
			t.Fatalf("MinDistByLength(%q,%q) = %v > NormalizedEdit %v", a, b, lb, ne)
		}
		if no := NormalizedOSA(a, b); lb > no {
			t.Fatalf("MinDistByLength(%q,%q) = %v > NormalizedOSA %v", a, b, lb, no)
		}
	}
}
