package strsim

import "unicode/utf8"

// OSA returns the optimal-string-alignment distance (Damerau-Levenshtein
// with non-overlapping transpositions): insert, delete, substitute, and
// adjacent transposition all cost 1. Typos frequently transpose adjacent
// characters, which plain Levenshtein counts as two edits; OSA counts one.
func OSA(a, b string) int {
	if a == b {
		return 0
	}
	ra, rb := runes(a), runes(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// Three rolling rows: i-2, i-1, i.
	prev2 := make([]int, lb+1)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			sub := prev[j-1]
			if ra[i-1] != rb[j-1] {
				sub++
			}
			d := min3(prev[j]+1, cur[j-1]+1, sub)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < d {
					d = t
				}
			}
			cur[j] = d
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// OSABounded computes the OSA distance with early exit: (d, true) when
// d <= maxDist, (0, false) otherwise. Banded like LevenshteinBounded.
func OSABounded(a, b string, maxDist int) (int, bool) {
	if maxDist < 0 {
		return 0, false
	}
	if a == b {
		return 0, true
	}
	ra, rb := runes(a), runes(b)
	la, lb := len(ra), len(rb)
	if abs(la-lb) > maxDist {
		return 0, false
	}
	if la == 0 {
		return lb, lb <= maxDist
	}
	if lb == 0 {
		return la, la <= maxDist
	}
	const inf = 1 << 30
	rows := [3][]int{make([]int, lb+1), make([]int, lb+1), make([]int, lb+1)}
	prev2, prev, cur := rows[0], rows[1], rows[2]
	for j := 0; j <= lb; j++ {
		if j <= maxDist {
			prev[j] = j
		} else {
			prev[j] = inf
		}
		prev2[j] = inf
	}
	for i := 1; i <= la; i++ {
		lo := i - maxDist
		if lo < 1 {
			lo = 1
		}
		hi := i + maxDist
		if hi > lb {
			hi = lb
		}
		if lo > hi {
			return 0, false
		}
		for j := 0; j <= lb; j++ {
			cur[j] = inf
		}
		if lo == 1 && i <= maxDist {
			cur[0] = i
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			sub := prev[j-1]
			if sub < inf && ra[i-1] != rb[j-1] {
				sub++
			}
			d := inf
			if prev[j] < inf && prev[j]+1 < d {
				d = prev[j] + 1
			}
			if cur[j-1] < inf && cur[j-1]+1 < d {
				d = cur[j-1] + 1
			}
			if sub < d {
				d = sub
			}
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] && prev2[j-2] < inf {
				if t := prev2[j-2] + 1; t < d {
					d = t
				}
			}
			cur[j] = d
			if d < rowMin {
				rowMin = d
			}
		}
		if rowMin > maxDist {
			return 0, false
		}
		prev2, prev, cur = prev, cur, prev2
	}
	d := prev[lb]
	if d > maxDist {
		return 0, false
	}
	return d, true
}

// NormalizedOSA is the OSA distance divided by the longer length, in [0,1].
func NormalizedOSA(a, b string) float64 {
	if a == b {
		return 0
	}
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 0
	}
	return float64(OSA(a, b)) / float64(m)
}

// NormalizedOSAWithin reports whether the normalized OSA distance is at
// most t, with early exit.
func NormalizedOSAWithin(a, b string, t float64) (float64, bool) {
	if t < 0 {
		return 0, false
	}
	if a == b {
		return 0, true
	}
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 0, true
	}
	d, ok := OSABounded(a, b, int(t*float64(m)))
	if !ok {
		return 0, false
	}
	nd := float64(d) / float64(m)
	if nd > t {
		return 0, false
	}
	return nd, true
}
