package strsim

import (
	"math/rand"
	"testing"
)

func TestOSAKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"ab", "ba", 1},     // transposition
		{"abcd", "acbd", 1}, // inner transposition
		{"ca", "abc", 3},    // the classic OSA-vs-full-Damerau case
		{"kitten", "sitting", 3},
		{"Boston", "Botson", 1},
		{"Boston", "Boton", 1},
		{"a", "", 1},
		{"", "xyz", 3},
	}
	for _, c := range cases {
		if got := OSA(c.a, c.b); got != c.want {
			t.Errorf("OSA(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := OSA(c.b, c.a); got != c.want {
			t.Errorf("OSA(%q,%q) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

// slowOSA is a reference implementation with the full matrix.
func slowOSA(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	d := make([][]int, la+1)
	for i := range d {
		d[i] = make([]int, lb+1)
		d[i][0] = i
	}
	for j := 0; j <= lb; j++ {
		d[0][j] = j
	}
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			sub := d[i-1][j-1]
			if ra[i-1] != rb[j-1] {
				sub++
			}
			d[i][j] = min3(d[i-1][j]+1, d[i][j-1]+1, sub)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := d[i-2][j-2] + 1; t < d[i][j] {
					d[i][j] = t
				}
			}
		}
	}
	return d[la][lb]
}

func TestOSAMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for i := 0; i < 500; i++ {
		a, b := randomWord(r, 10), randomWord(r, 10)
		if got, want := OSA(a, b), slowOSA(a, b); got != want {
			t.Fatalf("OSA(%q,%q) = %d, want %d", a, b, got, want)
		}
	}
}

func TestOSABoundedMatchesFull(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	for i := 0; i < 1000; i++ {
		a, b := randomWord(r, 9), randomWord(r, 9)
		k := r.Intn(5)
		want := OSA(a, b)
		d, ok := OSABounded(a, b, k)
		if want <= k {
			if !ok || d != want {
				t.Fatalf("OSABounded(%q,%q,%d) = %d,%v want %d,true", a, b, k, d, ok, want)
			}
		} else if ok {
			t.Fatalf("OSABounded(%q,%q,%d) = %d,true want false (full=%d)", a, b, k, d, want)
		}
	}
	if _, ok := OSABounded("a", "b", -1); ok {
		t.Fatal("negative bound accepted")
	}
	if d, ok := OSABounded("", "ab", 3); !ok || d != 2 {
		t.Fatal("empty-side bound failed")
	}
}

func TestOSANeverExceedsLevenshtein(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	for i := 0; i < 500; i++ {
		a, b := randomWord(r, 10), randomWord(r, 10)
		if OSA(a, b) > Levenshtein(a, b) {
			t.Fatalf("OSA(%q,%q)=%d > Levenshtein=%d", a, b, OSA(a, b), Levenshtein(a, b))
		}
	}
}

func TestNormalizedOSA(t *testing.T) {
	if d := NormalizedOSA("ab", "ba"); d != 0.5 {
		t.Fatalf("NormalizedOSA = %v", d)
	}
	if d := NormalizedOSA("", ""); d != 0 {
		t.Fatalf("empty = %v", d)
	}
	r := rand.New(rand.NewSource(64))
	for i := 0; i < 500; i++ {
		a, b := randomWord(r, 8), randomWord(r, 8)
		tt := float64(r.Intn(11)) / 10
		want := NormalizedOSA(a, b)
		got, ok := NormalizedOSAWithin(a, b, tt)
		if want <= tt {
			if !ok || got != want {
				t.Fatalf("NormalizedOSAWithin(%q,%q,%v) = %v,%v want %v,true", a, b, tt, got, ok, want)
			}
		} else if ok {
			t.Fatalf("NormalizedOSAWithin(%q,%q,%v) accepted (full=%v)", a, b, tt, want)
		}
	}
	if _, ok := NormalizedOSAWithin("a", "b", -1); ok {
		t.Fatal("negative threshold accepted")
	}
}
