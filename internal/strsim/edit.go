// Package strsim implements the distance functions the paper's
// fault-tolerant violation semantics is built on: edit distance (plain,
// normalized, and banded with early exit), Jaccard distance over q-gram
// sets, and normalized Euclidean distance for numeric values. It also
// provides a q-gram inverted index with a length filter so that
// FT-violation detection does not need to compare all O(n^2) pairs.
//
// All normalized distances are in [0,1], with 0 meaning identical.
package strsim

import "unicode/utf8"

// Levenshtein returns the unrestricted edit distance (insert, delete,
// substitute; unit costs) between a and b, computed over runes. It runs on
// the bit-parallel Myers kernels (see myers.go): single 64-bit word when the
// shorter string fits one, multi-word blocks beyond. ASCII inputs — the bulk
// of relational data — avoid rune decoding entirely. LevenshteinDP is the
// retained dynamic program the kernels are fuzzed against.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if isASCII(a) && isASCII(b) {
		if len(a) > len(b) {
			a, b = b, a
		}
		switch {
		case len(a) == 0:
			return len(b)
		case len(a) <= 64:
			d, _ := myersASCII(a, b, len(a)+len(b))
			return d
		default:
			d, _ := myersBlockedASCII(a, b, len(a)+len(b))
			return d
		}
	}
	ra, rb := runes(a), runes(b)
	if len(ra) > len(rb) {
		ra, rb = rb, ra
	}
	switch {
	case len(ra) == 0:
		return len(rb)
	case len(ra) <= 64:
		d, _ := myersRunes(ra, rb, len(ra)+len(rb))
		return d
	default:
		d, _ := myersBlockedRunes(ra, rb, len(ra)+len(rb))
		return d
	}
}

// LevenshteinDP is the classic dynamic program, retained as the equivalence
// oracle for the bit-parallel kernels (fuzz_test.go) and as the baseline
// the distance microbenchmarks compare against.
func LevenshteinDP(a, b string) int {
	if a == b {
		return 0
	}
	if isASCII(a) && isASCII(b) {
		return levenshteinBytes(a, b)
	}
	ra, rb := runes(a), runes(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// Keep the shorter string in the inner dimension.
	if la < lb {
		ra, rb = rb, ra
		la, lb = lb, la
	}
	prev := make([]int, lb+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur := prev[0]
		prev[0] = i
		for j := 1; j <= lb; j++ {
			sub := cur
			if ra[i-1] != rb[j-1] {
				sub++
			}
			cur = prev[j]
			prev[j] = min3(prev[j]+1, prev[j-1]+1, sub)
		}
	}
	return prev[lb]
}

// levenshteinBytes is the byte-wise DP for ASCII strings: no rune slices.
func levenshteinBytes(a, b string) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	if la < lb {
		a, b = b, a
		la, lb = lb, la
	}
	var stack [64]int
	var prev []int
	if lb+1 <= len(stack) {
		prev = stack[:lb+1]
	} else {
		prev = make([]int, lb+1)
	}
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur := prev[0]
		prev[0] = i
		ca := a[i-1]
		for j := 1; j <= lb; j++ {
			sub := cur
			if ca != b[j-1] {
				sub++
			}
			cur = prev[j]
			prev[j] = min3(prev[j]+1, prev[j-1]+1, sub)
		}
	}
	return prev[lb]
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// LevenshteinBounded computes the edit distance with early exit: it returns
// (d, true) when the distance d <= maxDist, and (0, false) when the distance
// exceeds maxDist. It runs on the bit-parallel kernels with a length-gap
// prefilter and the score-based cutoff (the final score can drop by at most
// one per remaining text character, so score - remaining > maxDist proves
// rejection mid-stream). LevenshteinBoundedDP is the retained banded dynamic
// program the kernels are fuzzed against, ok-flags included.
func LevenshteinBounded(a, b string, maxDist int) (int, bool) {
	if maxDist < 0 {
		return 0, false
	}
	if a == b {
		return 0, true
	}
	if isASCII(a) && isASCII(b) {
		if len(a) > len(b) {
			a, b = b, a
		}
		if len(b)-len(a) > maxDist {
			return 0, false
		}
		switch {
		case len(a) == 0:
			return len(b), true // length gap checked above
		case len(a) <= 64:
			return myersASCII(a, b, maxDist)
		default:
			return myersBlockedASCII(a, b, maxDist)
		}
	}
	ra, rb := runes(a), runes(b)
	if len(ra) > len(rb) {
		ra, rb = rb, ra
	}
	if len(rb)-len(ra) > maxDist {
		return 0, false
	}
	switch {
	case len(ra) == 0:
		return len(rb), true
	case len(ra) <= 64:
		return myersRunes(ra, rb, maxDist)
	default:
		return myersBlockedRunes(ra, rb, maxDist)
	}
}

// LevenshteinBoundedDP is the banded dynamic program behind the original
// LevenshteinBounded, retained as the kernel equivalence oracle and
// benchmark baseline. Same contract: (d, true) iff d <= maxDist.
func LevenshteinBoundedDP(a, b string, maxDist int) (int, bool) {
	if maxDist < 0 {
		return 0, false
	}
	if a == b {
		return 0, true
	}
	if isASCII(a) && isASCII(b) {
		return levenshteinBoundedBytes(a, b, maxDist)
	}
	ra, rb := runes(a), runes(b)
	la, lb := len(ra), len(rb)
	if abs(la-lb) > maxDist {
		return 0, false
	}
	if la == 0 {
		return lb, lb <= maxDist
	}
	if lb == 0 {
		return la, la <= maxDist
	}
	if la < lb {
		ra, rb = rb, ra
		la, lb = lb, la
	}
	const inf = 1 << 30
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := range prev {
		if j <= maxDist {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= la; i++ {
		lo := i - maxDist
		if lo < 1 {
			lo = 1
		}
		hi := i + maxDist
		if hi > lb {
			hi = lb
		}
		if lo > hi {
			return 0, false
		}
		cur[lo-1] = inf
		if lo == 1 {
			if i <= maxDist {
				cur[0] = i
			} else {
				cur[0] = inf
			}
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			sub := prev[j-1]
			if ra[i-1] != rb[j-1] {
				sub++
			}
			del := inf
			if prev[j] < inf {
				del = prev[j] + 1
			}
			ins := inf
			if cur[j-1] < inf {
				ins = cur[j-1] + 1
			}
			cur[j] = min3(del, ins, sub)
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if hi < lb {
			cur[hi+1] = inf
		}
		if rowMin > maxDist {
			return 0, false
		}
		prev, cur = cur, prev
	}
	d := prev[lb]
	if d > maxDist {
		return 0, false
	}
	return d, true
}

// levenshteinBoundedBytes is the banded DP over bytes for ASCII inputs.
func levenshteinBoundedBytes(a, b string, maxDist int) (int, bool) {
	la, lb := len(a), len(b)
	if abs(la-lb) > maxDist {
		return 0, false
	}
	if la == 0 {
		return lb, lb <= maxDist
	}
	if lb == 0 {
		return la, la <= maxDist
	}
	if la < lb {
		a, b = b, a
		la, lb = lb, la
	}
	const inf = 1 << 30
	var stack [128]int
	var prev, cur []int
	if 2*(lb+1) <= len(stack) {
		prev, cur = stack[:lb+1], stack[lb+1:2*(lb+1)]
	} else {
		prev = make([]int, lb+1)
		cur = make([]int, lb+1)
	}
	for j := range prev {
		if j <= maxDist {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= la; i++ {
		lo := i - maxDist
		if lo < 1 {
			lo = 1
		}
		hi := i + maxDist
		if hi > lb {
			hi = lb
		}
		if lo > hi {
			return 0, false
		}
		cur[lo-1] = inf
		if lo == 1 {
			if i <= maxDist {
				cur[0] = i
			} else {
				cur[0] = inf
			}
		}
		rowMin := inf
		ca := a[i-1]
		for j := lo; j <= hi; j++ {
			sub := prev[j-1]
			if ca != b[j-1] {
				sub++
			}
			del := inf
			if prev[j] < inf {
				del = prev[j] + 1
			}
			ins := inf
			if cur[j-1] < inf {
				ins = cur[j-1] + 1
			}
			cur[j] = min3(del, ins, sub)
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if hi < lb {
			cur[hi+1] = inf
		}
		if rowMin > maxDist {
			return 0, false
		}
		prev, cur = cur, prev
	}
	d := prev[lb]
	if d > maxDist {
		return 0, false
	}
	return d, true
}

// NormalizedEdit returns the edit distance divided by the length (in runes)
// of the longer string, yielding a value in [0,1]. Two empty strings have
// distance 0.
func NormalizedEdit(a, b string) float64 {
	if a == b {
		return 0
	}
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 0
	}
	return float64(Levenshtein(a, b)) / float64(m)
}

// NormalizedEditWithin reports whether the normalized edit distance between
// a and b is at most t, and if so returns it. It converts the normalized
// threshold into an absolute band so comparisons that cannot pass are
// abandoned early.
func NormalizedEditWithin(a, b string, t float64) (float64, bool) {
	if t < 0 {
		return 0, false
	}
	if a == b {
		return 0, true
	}
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 0, true
	}
	maxDist := int(t * float64(m))
	d, ok := LevenshteinBounded(a, b, maxDist)
	if !ok {
		return 0, false
	}
	nd := float64(d) / float64(m)
	if nd > t {
		return 0, false
	}
	return nd, true
}

// MinDistByLength is a cheap lower bound on any normalized unit-cost edit
// distance (Levenshtein, OSA): at least |len(a)-len(b)| insertions or
// deletions are needed, so the normalized distance is at least the
// rune-length difference divided by the longer length. It is NOT a bound for
// the Jaccard q-gram distance. Callers use it to reject far-apart pairs
// before touching a cache or running the banded DP.
func MinDistByLength(a, b string) float64 {
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 0
	}
	return float64(abs(la-lb)) / float64(m)
}

func runes(s string) []rune {
	// Fast path for ASCII, which dominates our workloads.
	ascii := true
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			ascii = false
			break
		}
	}
	if ascii {
		out := make([]rune, len(s))
		for i := 0; i < len(s); i++ {
			out[i] = rune(s[i])
		}
		return out
	}
	return []rune(s)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
