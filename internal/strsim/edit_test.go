package strsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"Boston", "Boton", 1},
		{"Masters", "Masers", 1},
		{"Bachelors", "Bachelers", 1},
		{"New York", "Boston", 7},
		{"日本語", "日本", 1},
		{"abc", "abc", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Levenshtein(c.b, c.a); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

// slowLevenshtein is an obviously correct reference implementation.
func slowLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	d := make([][]int, len(ra)+1)
	for i := range d {
		d[i] = make([]int, len(rb)+1)
		d[i][0] = i
	}
	for j := 0; j <= len(rb); j++ {
		d[0][j] = j
	}
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			sub := d[i-1][j-1]
			if ra[i-1] != rb[j-1] {
				sub++
			}
			d[i][j] = min3(d[i-1][j]+1, d[i][j-1]+1, sub)
		}
	}
	return d[len(ra)][len(rb)]
}

func randomWord(r *rand.Rand, n int) string {
	const alpha = "abcde"
	b := make([]byte, r.Intn(n+1))
	for i := range b {
		b[i] = alpha[r.Intn(len(alpha))]
	}
	return string(b)
}

func TestLevenshteinMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b := randomWord(r, 12), randomWord(r, 12)
		if got, want := Levenshtein(a, b), slowLevenshtein(a, b); got != want {
			t.Fatalf("Levenshtein(%q,%q) = %d, want %d", a, b, got, want)
		}
	}
}

func TestLevenshteinBoundedMatchesFull(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		a, b := randomWord(r, 10), randomWord(r, 10)
		k := r.Intn(6)
		want := Levenshtein(a, b)
		d, ok := LevenshteinBounded(a, b, k)
		if want <= k {
			if !ok || d != want {
				t.Fatalf("LevenshteinBounded(%q,%q,%d) = %d,%v want %d,true", a, b, k, d, ok, want)
			}
		} else if ok {
			t.Fatalf("LevenshteinBounded(%q,%q,%d) = %d,true want false (full=%d)", a, b, k, d, want)
		}
	}
}

func TestLevenshteinBoundedEdges(t *testing.T) {
	if _, ok := LevenshteinBounded("a", "b", -1); ok {
		t.Fatal("negative bound accepted")
	}
	if d, ok := LevenshteinBounded("same", "same", 0); !ok || d != 0 {
		t.Fatal("equal strings under bound 0 failed")
	}
	if _, ok := LevenshteinBounded("abcdef", "a", 2); ok {
		t.Fatal("length filter failed")
	}
	if d, ok := LevenshteinBounded("", "ab", 2); !ok || d != 2 {
		t.Fatal("empty-string case failed")
	}
	if _, ok := LevenshteinBounded("ab", "", 1); ok {
		t.Fatal("empty-string over-bound case failed")
	}
}

func TestNormalizedEditProperties(t *testing.T) {
	// Metric-like axioms on the normalized distance: identity, symmetry,
	// range.
	f := func(a, b string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		d := NormalizedEdit(a, b)
		if d < 0 || d > 1 {
			return false
		}
		if (d == 0) != (a == b) && !(a != b && Levenshtein(a, b) == 0) {
			// d==0 iff equal (Levenshtein 0 iff equal strings).
			return false
		}
		return NormalizedEdit(b, a) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	if NormalizedEdit("", "") != 0 {
		t.Fatal("empty strings not identical")
	}
}

func TestNormalizedEditKnown(t *testing.T) {
	// "Boston" vs "Boton": 1 edit over 6 runes.
	if got := NormalizedEdit("Boston", "Boton"); got != 1.0/6.0 {
		t.Fatalf("NormalizedEdit = %v", got)
	}
}

func TestNormalizedEditWithin(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a, b := randomWord(r, 8), randomWord(r, 8)
		tt := float64(r.Intn(11)) / 10
		want := NormalizedEdit(a, b)
		got, ok := NormalizedEditWithin(a, b, tt)
		if want <= tt {
			if !ok || got != want {
				t.Fatalf("NormalizedEditWithin(%q,%q,%v) = %v,%v want %v,true", a, b, tt, got, ok, want)
			}
		} else if ok {
			t.Fatalf("NormalizedEditWithin(%q,%q,%v) = %v,true want false (full=%v)", a, b, tt, got, want)
		}
	}
	if _, ok := NormalizedEditWithin("a", "b", -0.1); ok {
		t.Fatal("negative threshold accepted")
	}
	if d, ok := NormalizedEditWithin("", "", 0); !ok || d != 0 {
		t.Fatal("empty equality failed")
	}
}

func TestRunesASCIIAndUnicode(t *testing.T) {
	if got := Levenshtein("héllo", "hello"); got != 1 {
		t.Fatalf("unicode distance = %d", got)
	}
}
