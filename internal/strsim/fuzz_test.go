package strsim

import "testing"

// FuzzLevenshteinKernel holds the bit-parallel kernels (single-word and
// blocked, ASCII and rune paths) to exact parity with the retained dynamic
// program. Run `go test -fuzz=FuzzLevenshteinKernel` to explore; the seed
// corpus runs in every normal test invocation.
func FuzzLevenshteinKernel(f *testing.F) {
	f.Add("kitten", "sitting")
	f.Add("", "")
	f.Add("abc", "")
	f.Add("héllo", "hello")
	f.Add("日本語のテキスト", "日本语のテキスト")
	f.Add("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaabcde", "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaedcba")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 256 || len(b) > 256 {
			t.Skip()
		}
		if got, want := Levenshtein(a, b), LevenshteinDP(a, b); got != want {
			t.Fatalf("Levenshtein(%q,%q) = %d, DP oracle = %d", a, b, got, want)
		}
	})
}

// FuzzLevenshteinBounded cross-checks the bounded kernel against the banded
// DP oracle on arbitrary inputs: distance AND ok-flag must agree exactly,
// including the early-exit rejections.
func FuzzLevenshteinBounded(f *testing.F) {
	f.Add("kitten", "sitting", 3)
	f.Add("", "", 0)
	f.Add("abc", "", 5)
	f.Add("héllo", "hello", 1)
	f.Add("aaaaaaaaaa", "bbbbbbbbbb", 2)
	f.Add("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaabcde", "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaedcba", 4)
	f.Fuzz(func(t *testing.T, a, b string, k int) {
		if len(a) > 256 || len(b) > 256 || k > 256 {
			t.Skip()
		}
		d, ok := LevenshteinBounded(a, b, k)
		dDP, okDP := LevenshteinBoundedDP(a, b, k)
		if ok != okDP || d != dDP {
			t.Fatalf("LevenshteinBounded(%q,%q,%d) = %d,%v; DP oracle = %d,%v", a, b, k, d, ok, dDP, okDP)
		}
		full := LevenshteinDP(a, b)
		if k >= 0 && full <= k {
			if !ok || d != full {
				t.Fatalf("LevenshteinBounded(%q,%q,%d) = %d,%v; full = %d", a, b, k, d, ok, full)
			}
		} else if ok {
			t.Fatalf("LevenshteinBounded(%q,%q,%d) accepted; full = %d", a, b, k, full)
		}
	})
}

// FuzzMatcher holds the one-vs-many Matcher — which keeps the pattern's
// equivalence table across calls — to the same oracle parity as the one-shot
// kernels, bounded and unbounded, over ASCII and multi-rune inputs.
func FuzzMatcher(f *testing.F) {
	f.Add("boston", "bostn", 1)
	f.Add("", "x", 0)
	f.Add("héllo", "h好llo", 2)
	f.Add("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaabcde", "zzz", 100)
	f.Fuzz(func(t *testing.T, pat, text string, k int) {
		if len(pat) > 256 || len(text) > 256 || k > 256 {
			t.Skip()
		}
		mt := AcquireMatcher(pat)
		defer mt.Release()
		if got, want := mt.Distance(text), LevenshteinDP(pat, text); got != want {
			t.Fatalf("Matcher(%q).Distance(%q) = %d, DP oracle = %d", pat, text, got, want)
		}
		d, ok := mt.DistanceBounded(text, k)
		dDP, okDP := LevenshteinBoundedDP(pat, text, k)
		if ok != okDP || d != dDP {
			t.Fatalf("Matcher(%q).DistanceBounded(%q,%d) = %d,%v; DP oracle = %d,%v", pat, text, k, d, ok, dDP, okDP)
		}
	})
}

// FuzzOSABounded does the same for the transposition-aware distance.
func FuzzOSABounded(f *testing.F) {
	f.Add("ab", "ba", 1)
	f.Add("boston", "bsoton", 2)
	f.Add("", "xyz", 0)
	f.Fuzz(func(t *testing.T, a, b string, k int) {
		if len(a) > 64 || len(b) > 64 || k > 64 {
			t.Skip()
		}
		full := OSA(a, b)
		d, ok := OSABounded(a, b, k)
		if k >= 0 && full <= k {
			if !ok || d != full {
				t.Fatalf("OSABounded(%q,%q,%d) = %d,%v; full = %d", a, b, k, d, ok, full)
			}
		} else if ok {
			t.Fatalf("OSABounded(%q,%q,%d) accepted; full = %d", a, b, k, full)
		}
	})
}

// FuzzIndexSearch checks that the q-gram index never misses a true match.
func FuzzIndexSearch(f *testing.F) {
	f.Add("boston", "boton", "albany", 1)
	f.Add("", "a", "ab", 2)
	f.Fuzz(func(t *testing.T, q, s1, s2 string, k int) {
		if len(q) > 32 || len(s1) > 32 || len(s2) > 32 || k < 0 || k > 8 {
			t.Skip()
		}
		ix := NewIndex(2)
		ix.Add(s1)
		ix.Add(s2)
		got := map[int]bool{}
		for _, m := range ix.Search(q, k) {
			got[m.ID] = true
		}
		for id, s := range []string{s1, s2} {
			want := Levenshtein(q, s) <= k
			if got[id] != want {
				t.Fatalf("Search(%q,%d) id %d (%q): got %v want %v", q, k, id, s, got[id], want)
			}
		}
	})
}
