package strsim

import "testing"

// FuzzLevenshteinBounded cross-checks the banded computation against the
// full one on arbitrary inputs. Run `go test -fuzz=FuzzLevenshteinBounded`
// to explore; the seed corpus runs in every normal test invocation.
func FuzzLevenshteinBounded(f *testing.F) {
	f.Add("kitten", "sitting", 3)
	f.Add("", "", 0)
	f.Add("abc", "", 5)
	f.Add("héllo", "hello", 1)
	f.Add("aaaaaaaaaa", "bbbbbbbbbb", 2)
	f.Fuzz(func(t *testing.T, a, b string, k int) {
		if len(a) > 64 || len(b) > 64 || k > 64 {
			t.Skip()
		}
		full := Levenshtein(a, b)
		d, ok := LevenshteinBounded(a, b, k)
		if k >= 0 && full <= k {
			if !ok || d != full {
				t.Fatalf("LevenshteinBounded(%q,%q,%d) = %d,%v; full = %d", a, b, k, d, ok, full)
			}
		} else if ok {
			t.Fatalf("LevenshteinBounded(%q,%q,%d) accepted; full = %d", a, b, k, full)
		}
	})
}

// FuzzOSABounded does the same for the transposition-aware distance.
func FuzzOSABounded(f *testing.F) {
	f.Add("ab", "ba", 1)
	f.Add("boston", "bsoton", 2)
	f.Add("", "xyz", 0)
	f.Fuzz(func(t *testing.T, a, b string, k int) {
		if len(a) > 64 || len(b) > 64 || k > 64 {
			t.Skip()
		}
		full := OSA(a, b)
		d, ok := OSABounded(a, b, k)
		if k >= 0 && full <= k {
			if !ok || d != full {
				t.Fatalf("OSABounded(%q,%q,%d) = %d,%v; full = %d", a, b, k, d, ok, full)
			}
		} else if ok {
			t.Fatalf("OSABounded(%q,%q,%d) accepted; full = %d", a, b, k, full)
		}
	})
}

// FuzzIndexSearch checks that the q-gram index never misses a true match.
func FuzzIndexSearch(f *testing.F) {
	f.Add("boston", "boton", "albany", 1)
	f.Add("", "a", "ab", 2)
	f.Fuzz(func(t *testing.T, q, s1, s2 string, k int) {
		if len(q) > 32 || len(s1) > 32 || len(s2) > 32 || k < 0 || k > 8 {
			t.Skip()
		}
		ix := NewIndex(2)
		ix.Add(s1)
		ix.Add(s2)
		got := map[int]bool{}
		for _, m := range ix.Search(q, k) {
			got[m.ID] = true
		}
		for id, s := range []string{s1, s2} {
			want := Levenshtein(q, s) <= k
			if got[id] != want {
				t.Fatalf("Search(%q,%d) id %d (%q): got %v want %v", q, k, id, s, got[id], want)
			}
		}
	})
}
