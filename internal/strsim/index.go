package strsim

import "unicode/utf8"

// Index is a q-gram inverted index over a set of strings supporting
// edit-distance range queries. It applies the classic length filter
// (||a|-|b|| <= k) and count filter (strings within edit distance k share at
// least max(|a|,|b|) - q + 1 - k*q q-grams) before verifying candidates with
// a banded edit-distance computation.
//
// The violation-graph builder uses it to find, for each pattern vertex, the
// other vertices that could be within the FT-violation threshold on a probe
// attribute, avoiding the all-pairs comparison the naive semantics implies.
// posting records one string containing a gram and how many times the gram
// occurs in it. The count matters: the count filter bounds the *multiset*
// q-gram intersection, so repeated grams ("000000") must contribute their
// multiplicity, not just their presence.
type posting struct {
	id  int32
	cnt int32
}

type Index struct {
	q     int
	strs  []string
	lens  []int
	gram  map[string][]posting // gram -> strings containing it, with counts
	short []int32              // ids of strings with < q runes (indexed whole)
}

// NewIndex creates an index over q-grams. q defaults to 2 when non-positive.
func NewIndex(q int) *Index {
	if q <= 0 {
		q = 2
	}
	return &Index{q: q, gram: make(map[string][]posting)}
}

// Q reports the gram size.
func (ix *Index) Q() int { return ix.q }

// Len reports the number of indexed strings.
func (ix *Index) Len() int { return len(ix.strs) }

// String returns the indexed string with the given id.
func (ix *Index) String(id int) string { return ix.strs[id] }

// Add indexes s and returns its id. Duplicates are indexed independently;
// callers that group equal values should add each distinct value once.
func (ix *Index) Add(s string) int {
	id := int32(len(ix.strs))
	ix.strs = append(ix.strs, s)
	r := runes(s)
	ix.lens = append(ix.lens, len(r))
	if len(r) < ix.q {
		ix.short = append(ix.short, id)
		return int(id)
	}
	counts := make(map[string]int32, len(r))
	for i := 0; i+ix.q <= len(r); i++ {
		counts[string(r[i:i+ix.q])]++
	}
	for g, c := range counts {
		//lint:ignore mapiter each gram key occurs once per counts map, so every posting list gains at most one entry per Add — list order is Add order, not map order
		ix.gram[g] = append(ix.gram[g], posting{id: id, cnt: c})
	}
	return int(id)
}

// Match pairs a candidate id with its verified edit distance.
type Match struct {
	ID   int
	Dist int // absolute edit distance
}

// Search returns the ids of indexed strings whose edit distance to s is at
// most maxDist, with the distances. The query string itself, if indexed,
// matches with distance 0. Results are in ascending id order.
func (ix *Index) Search(s string, maxDist int) []Match {
	if maxDist < 0 {
		return nil
	}
	r := runes(s)
	ls := len(r)

	// Candidate generation. Short strings (and short queries) bypass the
	// count filter: every short string is a candidate, and for a short
	// query every string passing the length filter is a candidate. The
	// query's equivalence table is built once (pooled Matcher) and streamed
	// over every surviving candidate.
	counts := make(map[int32]int)
	var out []Match
	mt := AcquireMatcher(s)
	defer mt.Release()
	verify := func(id int32) {
		if abs(ix.lens[id]-ls) > maxDist {
			return
		}
		if d, ok := mt.DistanceBounded(ix.strs[id], maxDist); ok {
			out = append(out, Match{ID: int(id), Dist: d})
		}
	}

	// When the count filter cannot exclude anything — the query is shorter
	// than a gram, or the minimum required shared-gram count is non-positive
	// (a candidate sharing zero grams could still be within maxDist) — fall
	// back to scanning every string through the length filter.
	if ls < ix.q || ls-ix.q+1-maxDist*ix.q <= 0 {
		for id := range ix.strs {
			verify(int32(id))
		}
		sortMatches(out)
		return out
	}

	// Multiset intersection lower bound: per distinct gram, the shared
	// count is min(query occurrences, indexed occurrences).
	qCounts := make(map[string]int, ls)
	for i := 0; i+ix.q <= ls; i++ {
		qCounts[string(r[i:i+ix.q])]++
	}
	for g, qc := range qCounts {
		for _, p := range ix.gram[g] {
			shared := int(p.cnt)
			if qc < shared {
				shared = qc
			}
			counts[p.id] += shared
		}
	}
	for id, c := range counts {
		m := ls
		if ix.lens[id] > m {
			m = ix.lens[id]
		}
		need := m - ix.q + 1 - maxDist*ix.q
		if c >= need {
			verify(id)
		}
	}
	// Short indexed strings never share grams with a long query but may
	// still be within maxDist.
	for _, id := range ix.short {
		verify(id)
	}
	sortMatches(out)
	return out
}

// NormMatch pairs a candidate id with its verified normalized edit
// distance.
type NormMatch struct {
	ID   int
	Dist float64
}

// SearchNormalized returns ids whose normalized edit distance to s is at
// most t, with the normalized distances.
func (ix *Index) SearchNormalized(s string, t float64) []NormMatch {
	ls := utf8.RuneCountInString(s)
	// The absolute bound depends on the candidate's length; use the loosest
	// bound t*(ls+k) solved for k: k <= t*ls/(1-t) + ... simpler: distances
	// are at most t*max(ls, lc) and lc <= ls + k, so k <= t*(ls+k) gives
	// k <= t*ls/(1-t) for t < 1. For t >= 1 everything matches.
	var maxDist int
	if t >= 1 {
		maxDist = 1 << 20
	} else if t < 0 {
		return nil
	} else {
		maxDist = int(t * float64(ls) / (1 - t))
	}
	raw := ix.Search(s, maxDist)
	var out []NormMatch
	for _, m := range raw {
		lc := ix.lens[m.ID]
		mx := ls
		if lc > mx {
			mx = lc
		}
		var nd float64
		if mx > 0 {
			nd = float64(m.Dist) / float64(mx)
		}
		if nd <= t {
			out = append(out, NormMatch{ID: m.ID, Dist: nd})
		}
	}
	return out
}

func sortMatches(ms []Match) {
	// Insertion sort: candidate lists are small after filtering.
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].ID < ms[j-1].ID; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}
