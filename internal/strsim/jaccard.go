package strsim

// QGrams returns the multiset of q-grams of s as a map from gram to count,
// computed over runes. Strings shorter than q contribute a single gram equal
// to the whole string, so very short values still overlap with themselves.
func QGrams(s string, q int) map[string]int {
	if q <= 0 {
		q = 2
	}
	r := runes(s)
	grams := make(map[string]int)
	if len(r) < q {
		grams[string(r)]++
		return grams
	}
	for i := 0; i+q <= len(r); i++ {
		grams[string(r[i:i+q])]++
	}
	return grams
}

// JaccardDistance returns 1 - |A∩B| / |A∪B| over the q-gram sets of a and
// b (set semantics: counts clipped at 1). It is in [0,1].
func JaccardDistance(a, b string, q int) float64 {
	if a == b {
		return 0
	}
	ga, gb := QGrams(a, q), QGrams(b, q)
	inter := 0
	for g := range ga {
		if _, ok := gb[g]; ok {
			inter++
		}
	}
	union := len(ga) + len(gb) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// Euclidean returns |a-b| / span, a normalized distance in [0,1] for numeric
// values whose observed domain width is span. A non-positive span (constant
// column) makes any two distinct values maximally distant and equal values
// identical, which matches the paper's normalization "dividing by the
// largest distance".
func Euclidean(a, b, span float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if span <= 0 {
		// d is an absolute difference, so <= 0 means exactly equal.
		if d <= 0 {
			return 0
		}
		return 1
	}
	nd := d / span
	if nd > 1 {
		nd = 1
	}
	return nd
}
