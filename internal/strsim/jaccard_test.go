package strsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQGrams(t *testing.T) {
	g := QGrams("abab", 2)
	if g["ab"] != 2 || g["ba"] != 1 || len(g) != 2 {
		t.Fatalf("QGrams = %v", g)
	}
	short := QGrams("a", 2)
	if short["a"] != 1 || len(short) != 1 {
		t.Fatalf("short QGrams = %v", short)
	}
	if g := QGrams("ab", 0); len(g) != 1 {
		t.Fatalf("q<=0 default failed: %v", g)
	}
}

func TestJaccardDistanceKnown(t *testing.T) {
	if d := JaccardDistance("abc", "abc", 2); d != 0 {
		t.Fatalf("identical distance = %v", d)
	}
	// "abcd" grams {ab,bc,cd}; "abce" grams {ab,bc,ce}: inter 2, union 4.
	if d := JaccardDistance("abcd", "abce", 2); d != 0.5 {
		t.Fatalf("JaccardDistance = %v, want 0.5", d)
	}
	if d := JaccardDistance("xy", "pq", 2); d != 1 {
		t.Fatalf("disjoint distance = %v, want 1", d)
	}
}

func TestJaccardProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 16 {
			a = a[:16]
		}
		if len(b) > 16 {
			b = b[:16]
		}
		d := JaccardDistance(a, b, 2)
		return d >= 0 && d <= 1 && JaccardDistance(b, a, 2) == d && JaccardDistance(a, a, 2) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEuclidean(t *testing.T) {
	if d := Euclidean(3, 7, 10); d != 0.4 {
		t.Fatalf("Euclidean = %v", d)
	}
	if d := Euclidean(7, 3, 10); d != 0.4 {
		t.Fatalf("Euclidean symmetry = %v", d)
	}
	if d := Euclidean(5, 5, 0); d != 0 {
		t.Fatalf("zero-span identical = %v", d)
	}
	if d := Euclidean(5, 6, 0); d != 1 {
		t.Fatalf("zero-span distinct = %v", d)
	}
	// Values outside the observed span clip at 1.
	if d := Euclidean(0, 100, 10); d != 1 {
		t.Fatalf("clipping = %v", d)
	}
}

func TestIndexSearchMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		ix := NewIndex(2)
		var strs []string
		for i := 0; i < 40; i++ {
			s := randomWord(r, 9)
			strs = append(strs, s)
			if got := ix.Add(s); got != i {
				t.Fatalf("Add returned %d, want %d", got, i)
			}
		}
		q := randomWord(r, 9)
		for k := 0; k <= 3; k++ {
			got := ix.Search(q, k)
			var want []Match
			for id, s := range strs {
				if d := Levenshtein(q, s); d <= k {
					want = append(want, Match{ID: id, Dist: d})
				}
			}
			if len(got) != len(want) {
				t.Fatalf("Search(%q,%d) = %v, want %v (strs=%v)", q, k, got, want, strs)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Search(%q,%d)[%d] = %v, want %v", q, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestIndexSearchNormalizedMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ix := NewIndex(2)
	var strs []string
	for i := 0; i < 60; i++ {
		s := randomWord(r, 10)
		strs = append(strs, s)
		ix.Add(s)
	}
	for trial := 0; trial < 40; trial++ {
		q := randomWord(r, 10)
		tt := []float64{0, 0.2, 0.35, 0.5}[trial%4]
		got := ix.SearchNormalized(q, tt)
		gotSet := make(map[int]float64)
		for _, m := range got {
			gotSet[m.ID] = m.Dist
		}
		for id, s := range strs {
			d := NormalizedEdit(q, s)
			if d <= tt {
				if gd, ok := gotSet[id]; !ok || gd != d {
					t.Fatalf("SearchNormalized(%q,%v) missing id %d (%q, d=%v); got %v", q, tt, id, s, d, got)
				}
			} else if _, ok := gotSet[id]; ok {
				t.Fatalf("SearchNormalized(%q,%v) false positive id %d (%q, d=%v)", q, tt, id, s, d)
			}
		}
	}
}

func TestIndexEdgeCases(t *testing.T) {
	ix := NewIndex(0) // defaults to 2
	if ix.Q() != 2 {
		t.Fatalf("Q = %d", ix.Q())
	}
	ix.Add("")     // short string
	ix.Add("a")    // short string
	ix.Add("abcd") // normal
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if ix.String(2) != "abcd" {
		t.Fatalf("String(2) = %q", ix.String(2))
	}
	// Short query scans with length filter.
	got := ix.Search("b", 1)
	if len(got) != 2 { // "" (d=1) and "a" (d=1)
		t.Fatalf("short query got %v", got)
	}
	// Long query must still reach short strings.
	got = ix.Search("ab", 2)
	want := 0
	for _, s := range []string{"", "a", "abcd"} {
		if Levenshtein("ab", s) <= 2 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("Search(ab,2) = %v, want %d matches", got, want)
	}
	if got := ix.Search("x", -1); got != nil {
		t.Fatal("negative maxDist returned matches")
	}
	if got := ix.SearchNormalized("x", -0.5); got != nil {
		t.Fatal("negative threshold returned matches")
	}
	// Threshold >= 1 matches everything.
	if got := ix.SearchNormalized("zzzz", 1); len(got) != 3 {
		t.Fatalf("t=1 matched %d, want 3", len(got))
	}
}
