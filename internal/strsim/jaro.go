package strsim

// Jaro returns the Jaro similarity of a and b in [0,1] (1 = identical).
// Characters match when equal and within half the longer length; the
// similarity combines match counts and transpositions.
func Jaro(a, b string) float64 {
	ra, rb := runes(a), runes(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(transpositions)/2)/m) / 3
}

// JaroWinkler boosts the Jaro similarity for strings sharing a common
// prefix (up to 4 runes) with the standard scaling factor 0.1. The result
// is a similarity in [0,1].
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	// Jaro similarities are non-negative, so <= 0 means exactly zero.
	if j <= 0 {
		return 0
	}
	ra, rb := runes(a), runes(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// JaroWinklerDistance is 1 - JaroWinkler, a distance in [0,1] usable as an
// alternative string metric (common for person and organization names).
func JaroWinklerDistance(a, b string) float64 {
	return 1 - JaroWinkler(a, b)
}
