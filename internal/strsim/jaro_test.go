package strsim

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-3 }

func TestJaroKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"abc", "", 0},
		{"", "abc", 0},
		{"abc", "abc", 1},
		{"martha", "marhta", 0.944}, // classic textbook pair
		{"dixon", "dicksonx", 0.767},
		{"jellyfish", "smellyfish", 0.896},
		{"abc", "xyz", 0},
	}
	for _, c := range cases {
		if got := Jaro(c.a, c.b); !approx(got, c.want) {
			t.Errorf("Jaro(%q,%q) = %.4f, want %.3f", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"martha", "marhta", 0.961},
		{"dixon", "dicksonx", 0.813},
		{"abc", "abc", 1},
		{"abc", "xyz", 0},
	}
	for _, c := range cases {
		if got := JaroWinkler(c.a, c.b); !approx(got, c.want) {
			t.Errorf("JaroWinkler(%q,%q) = %.4f, want %.3f", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 16 {
			a = a[:16]
		}
		if len(b) > 16 {
			b = b[:16]
		}
		j := Jaro(a, b)
		if j < 0 || j > 1 {
			return false
		}
		if !approx(Jaro(b, a), j) {
			return false
		}
		jw := JaroWinkler(a, b)
		if jw < j-1e-9 || jw > 1 {
			return false // Winkler boost never lowers similarity
		}
		return JaroWinklerDistance(a, b) >= 0 && JaroWinklerDistance(a, b) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	if Jaro("same", "same") != 1 || JaroWinklerDistance("same", "same") != 0 {
		t.Fatal("identity failed")
	}
}
