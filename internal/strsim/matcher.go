package strsim

import (
	"sync"
	"unicode/utf8"
)

// Matcher computes edit distances from one fixed pattern to many candidate
// texts. It builds the pattern's character-equivalence bitmask table once at
// Reset and reuses it for every Distance/DistanceBounded call, amortizing
// the per-comparison preprocessing the one-shot kernels pay each time. The
// hot consumers — Index.Search verification, vgraph candidate verification,
// target-tree nearest scans — all stream many candidates against one query
// value, which is exactly this shape.
//
// A Matcher is not safe for concurrent use; each worker acquires its own
// (AcquireMatcher/Release pool the tables across uses, and Reset clears only
// the entries the previous pattern touched).
type Matcher struct {
	pat string
	m   int // pattern length in runes
	w   int // 64-bit words covering the pattern

	// Single-word ASCII pattern: dense table plus the list of characters it
	// touches, so Reset is O(distinct chars), not O(128).
	peqA    [128]uint64
	touched []byte

	// Single-word non-ASCII pattern: sparse table over the pattern's runes.
	// xword says the sparse table is the live one (the map itself survives
	// Reset for reuse, so nilness cannot be the discriminator).
	peqX  map[rune]uint64
	xword bool

	// Blocked pattern (> 64 runes): per-rune multi-word equivalence rows and
	// the reusable column scratch.
	peqW   map[rune][]uint64
	pv, mv []uint64
}

// NewMatcher builds a Matcher for the pattern. Callers comparing one value
// against a stream of candidates should prefer AcquireMatcher, which pools
// the tables.
func NewMatcher(pattern string) *Matcher {
	mt := &Matcher{}
	mt.Reset(pattern)
	return mt
}

var matcherPool = sync.Pool{New: func() any { return new(Matcher) }}

// AcquireMatcher returns a pooled Matcher reset to the pattern. Release it
// when the candidate stream is exhausted.
func AcquireMatcher(pattern string) *Matcher {
	mt := matcherPool.Get().(*Matcher)
	mt.Reset(pattern)
	return mt
}

// Release returns the Matcher to the pool.
func (mt *Matcher) Release() { matcherPool.Put(mt) }

// Pattern reports the pattern the Matcher is bound to.
func (mt *Matcher) Pattern() string { return mt.pat }

// Len reports the pattern length in runes.
func (mt *Matcher) Len() int { return mt.m }

// Reset rebinds the Matcher to a new pattern, clearing only the previous
// pattern's table entries.
func (mt *Matcher) Reset(pattern string) {
	for _, c := range mt.touched {
		mt.peqA[c] = 0
	}
	mt.touched = mt.touched[:0]
	if len(mt.peqX) > 0 {
		clear(mt.peqX)
	}
	if len(mt.peqW) > 0 {
		clear(mt.peqW)
	}

	mt.pat = pattern
	mt.xword = false
	if isASCII(pattern) {
		mt.m = len(pattern)
		mt.w = (mt.m + 63) >> 6
		if mt.m <= 64 {
			for i := 0; i < len(pattern); i++ {
				c := pattern[i] & 0x7f
				if mt.peqA[c] == 0 {
					mt.touched = append(mt.touched, c)
				}
				mt.peqA[c] |= 1 << uint(i)
			}
			return
		}
		mt.resetBlocked([]rune(pattern))
		return
	}
	pr := []rune(pattern)
	mt.m = len(pr)
	mt.w = (mt.m + 63) >> 6
	if mt.m <= 64 {
		mt.xword = true
		if mt.peqX == nil {
			mt.peqX = make(map[rune]uint64, mt.m)
		}
		for i, r := range pr {
			mt.peqX[r] |= 1 << uint(i)
		}
		return
	}
	mt.resetBlocked(pr)
}

func (mt *Matcher) resetBlocked(pr []rune) {
	if mt.peqW == nil {
		mt.peqW = make(map[rune][]uint64, len(pr))
	}
	for i, r := range pr {
		row := mt.peqW[r]
		if len(row) < mt.w {
			row = make([]uint64, mt.w)
			mt.peqW[r] = row
		}
		row[i>>6] |= 1 << uint(i&63)
	}
	if cap(mt.pv) < mt.w {
		mt.pv = make([]uint64, mt.w)
		mt.mv = make([]uint64, mt.w)
	}
}

// Distance is the unrestricted edit distance between the pattern and text,
// equal to Levenshtein(pattern, text).
func (mt *Matcher) Distance(text string) int {
	d, _ := mt.DistanceBounded(text, mt.m+len(text))
	return d
}

// DistanceBounded is the bounded distance with the LevenshteinBounded
// contract: (d, true) when the distance d <= maxDist, (0, false) otherwise.
func (mt *Matcher) DistanceBounded(text string, maxDist int) (int, bool) {
	if maxDist < 0 {
		return 0, false
	}
	if text == mt.pat {
		return 0, true
	}
	ascii := isASCII(text)
	n := len(text)
	if !ascii {
		n = utf8.RuneCountInString(text)
	}
	if abs(mt.m-n) > maxDist {
		return 0, false
	}
	if mt.m == 0 {
		return n, true // length filter above guarantees n <= maxDist
	}
	if n == 0 {
		return mt.m, true
	}
	if mt.m <= 64 {
		if !mt.xword && ascii {
			return myersRunASCII(&mt.peqA, mt.m, text, maxDist)
		}
		return mt.distWord(text, n, maxDist)
	}
	return mt.distBlocked(text, n, maxDist)
}

// distWord is the single-word kernel over a rune-iterated text, covering
// non-ASCII patterns (sparse table) and non-ASCII texts against ASCII
// patterns (dense table; runes outside it match nothing).
func (mt *Matcher) distWord(text string, n, maxDist int) (int, bool) {
	pv := ^uint64(0)
	var mv uint64
	score := mt.m
	hbit := uint64(1) << uint(mt.m-1)
	j := 0
	for _, r := range text {
		var eq uint64
		if mt.xword {
			eq = mt.peqX[r]
		} else if r < 128 {
			eq = mt.peqA[r]
		}
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&hbit != 0 {
			score++
		} else if mh&hbit != 0 {
			score--
		}
		ph = ph<<1 | 1
		pv = mh<<1 | ^(xv | ph)
		mv = ph & xv
		if score-(n-1-j) > maxDist {
			return 0, false
		}
		j++
	}
	if score > maxDist {
		return 0, false
	}
	return score, true
}

// distBlocked is the multi-word kernel for patterns longer than 64 runes.
func (mt *Matcher) distBlocked(text string, n, maxDist int) (int, bool) {
	pv := mt.pv[:mt.w]
	mv := mt.mv[:mt.w]
	for b := range pv {
		pv[b] = ^uint64(0)
		mv[b] = 0
	}
	score := mt.m
	hbit := uint64(1) << uint((mt.m-1)&63)
	j := 0
	for _, r := range text {
		score += advanceBlocks(mt.peqW[r], pv, mv, hbit)
		if score-(n-1-j) > maxDist {
			return 0, false
		}
		j++
	}
	if score > maxDist {
		return 0, false
	}
	return score, true
}
