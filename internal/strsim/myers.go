package strsim

// Bit-parallel edit-distance kernels (Myers 1999, blocked per Hyyrö 2003).
//
// The pattern is encoded as per-character equivalence bitmasks: bit i of
// peq[c] is set when pattern[i] == c. One dynamic-programming column of the
// classic Levenshtein matrix is then represented by two machine words — the
// positive (Pv) and negative (Mv) vertical delta vectors — and advancing the
// whole column over one text character costs a constant number of word
// operations instead of O(m) cell updates. The running score tracks the
// bottom cell D[m][j]; `Ph = (Ph << 1) | 1` injects the D[0][j] = j boundary
// of the global edit-distance recurrence (Myers' original searcher uses
// D[0][j] = 0 instead).
//
// Patterns longer than 64 runes use the blocked variant: the column is split
// into 64-bit blocks and a horizontal carry hin/hout in {-1, 0, +1} chains
// them, exactly Hyyrö's advanceBlock step.
//
// Every kernel takes a maxDist bound and applies the same early exit: after
// the j-th text character the final score can still drop by at most one per
// remaining character, so score - remaining > maxDist proves rejection. The
// unbounded entry points pass an unreachable bound. The retained dynamic
// programs (LevenshteinDP, LevenshteinBoundedDP) are the equivalence
// oracles; the fuzz targets in fuzz_test.go hold the kernels to exact parity
// with them, distances and ok-flags both.

// myersASCII computes the bounded distance for an ASCII pattern p with
// 1 <= len(p) <= 64 against ASCII text t.
func myersASCII(p, t string, maxDist int) (int, bool) {
	var peq [128]uint64
	for i := 0; i < len(p); i++ {
		peq[p[i]&0x7f] |= 1 << uint(i)
	}
	return myersRunASCII(&peq, len(p), t, maxDist)
}

// myersRunASCII advances a prebuilt single-word ASCII equivalence table over
// t. Shared by the one-shot kernel and the Matcher, whose whole point is
// building peq once per pattern.
func myersRunASCII(peq *[128]uint64, m int, t string, maxDist int) (int, bool) {
	pv := ^uint64(0)
	var mv uint64
	score := m
	hbit := uint64(1) << uint(m-1)
	n := len(t)
	for j := 0; j < n; j++ {
		eq := peq[t[j]&0x7f]
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&hbit != 0 {
			score++
		} else if mh&hbit != 0 {
			score--
		}
		ph = ph<<1 | 1
		pv = mh<<1 | ^(xv | ph)
		mv = ph & xv
		if score-(n-1-j) > maxDist {
			return 0, false
		}
	}
	if score > maxDist {
		return 0, false
	}
	return score, true
}

// myersRunes is the single-word kernel over runes: pattern pr with
// 1 <= len(pr) <= 64, used when either side holds non-ASCII characters.
func myersRunes(pr, tr []rune, maxDist int) (int, bool) {
	peq := make(map[rune]uint64, len(pr))
	for i, r := range pr {
		peq[r] |= 1 << uint(i)
	}
	pv := ^uint64(0)
	var mv uint64
	score := len(pr)
	hbit := uint64(1) << uint(len(pr)-1)
	n := len(tr)
	for j := 0; j < n; j++ {
		eq := peq[tr[j]]
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&hbit != 0 {
			score++
		} else if mh&hbit != 0 {
			score--
		}
		ph = ph<<1 | 1
		pv = mh<<1 | ^(xv | ph)
		mv = ph & xv
		if score-(n-1-j) > maxDist {
			return 0, false
		}
	}
	if score > maxDist {
		return 0, false
	}
	return score, true
}

// myersBlockedASCII is the multi-word kernel for ASCII patterns longer than
// 64 bytes: the column is w = ceil(m/64) blocks chained by the horizontal
// carry, with a dense 128×w equivalence slab.
func myersBlockedASCII(p, t string, maxDist int) (int, bool) {
	m := len(p)
	w := (m + 63) >> 6
	peq := make([]uint64, 128*w)
	for i := 0; i < m; i++ {
		peq[int(p[i]&0x7f)*w+i>>6] |= 1 << uint(i&63)
	}
	pv := make([]uint64, w)
	mv := make([]uint64, w)
	for b := range pv {
		pv[b] = ^uint64(0)
	}
	score := m
	hbit := uint64(1) << uint((m-1)&63)
	n := len(t)
	for j := 0; j < n; j++ {
		row := peq[int(t[j]&0x7f)*w : int(t[j]&0x7f)*w+w]
		score += advanceBlocks(row, pv, mv, hbit)
		if score-(n-1-j) > maxDist {
			return 0, false
		}
	}
	if score > maxDist {
		return 0, false
	}
	return score, true
}

// myersBlockedRunes is the multi-word kernel over runes, with a sparse
// per-rune equivalence map.
func myersBlockedRunes(pr, tr []rune, maxDist int) (int, bool) {
	m := len(pr)
	w := (m + 63) >> 6
	peq := make(map[rune][]uint64, m)
	for i, r := range pr {
		row := peq[r]
		if row == nil {
			row = make([]uint64, w)
			peq[r] = row
		}
		row[i>>6] |= 1 << uint(i&63)
	}
	pv := make([]uint64, w)
	mv := make([]uint64, w)
	for b := range pv {
		pv[b] = ^uint64(0)
	}
	score := m
	hbit := uint64(1) << uint((m-1)&63)
	n := len(tr)
	for j := 0; j < n; j++ {
		score += advanceBlocks(peq[tr[j]], pv, mv, hbit)
		if score-(n-1-j) > maxDist {
			return 0, false
		}
	}
	if score > maxDist {
		return 0, false
	}
	return score, true
}

// advanceBlocks runs one text character through every block of a multi-word
// column, threading the horizontal carry bottom-up, and returns the score
// delta observed at the pattern's last row. eq may be nil (a character
// absent from the pattern: all-zero equivalence). The high bits of the last
// block beyond hbit carry no information: carries in the Xh addition only
// propagate upward, so the garbage above the pattern's top bit never reaches
// it.
func advanceBlocks(eq []uint64, pv, mv []uint64, hbit uint64) int {
	w := len(pv)
	hin := 1
	for b := 0; b < w; b++ {
		var eqb uint64
		if eq != nil {
			eqb = eq[b]
		}
		pvb, mvb := pv[b], mv[b]
		xv := eqb | mvb
		if hin < 0 {
			eqb |= 1
		}
		xh := (((eqb & pvb) + pvb) ^ pvb) | eqb
		ph := mvb | ^(xh | pvb)
		mh := pvb & xh
		hb := uint64(1) << 63
		if b == w-1 {
			hb = hbit
		}
		hout := 0
		if ph&hb != 0 {
			hout = 1
		} else if mh&hb != 0 {
			hout = -1
		}
		ph <<= 1
		mh <<= 1
		if hin > 0 {
			ph |= 1
		} else if hin < 0 {
			mh |= 1
		}
		pv[b] = mh | ^(xv | ph)
		mv[b] = ph & xv
		hin = hout
	}
	return hin
}
