package strsim

import (
	"math/rand"
	"strings"
	"testing"
)

// randWord draws a word from the alphabet; small alphabets force dense
// match masks (many equal characters), large ones sparse masks.
func randWord(rng *rand.Rand, alphabet []rune, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteRune(alphabet[rng.Intn(len(alphabet))])
	}
	return sb.String()
}

// mutate applies up to k random edits (insert/delete/substitute) to s.
func mutate(rng *rand.Rand, alphabet []rune, s string, k int) string {
	r := []rune(s)
	for i := 0; i < k; i++ {
		switch op := rng.Intn(3); {
		case op == 0 && len(r) > 0: // delete
			p := rng.Intn(len(r))
			r = append(r[:p], r[p+1:]...)
		case op == 1: // insert
			p := rng.Intn(len(r) + 1)
			r = append(r[:p], append([]rune{alphabet[rng.Intn(len(alphabet))]}, r[p:]...)...)
		default: // substitute
			if len(r) > 0 {
				r[rng.Intn(len(r))] = alphabet[rng.Intn(len(alphabet))]
			}
		}
	}
	return string(r)
}

// TestMyersMatchesDP sweeps the kernel dispatch across every code path —
// single-word and blocked, ASCII and multi-rune, dense and sparse alphabets,
// lengths straddling the 64-rune word boundary — and checks exact distance
// and ok-flag parity with the retained DP oracles. The seed is fixed, so the
// sweep is deterministic.
func TestMyersMatchesDP(t *testing.T) {
	alphabets := [][]rune{
		[]rune("ab"),
		[]rune("abcdefghijklmnop"),
		[]rune("日本語テキストデータ好"),
		[]rune("aé日z"),
	}
	lengths := []int{0, 1, 2, 3, 7, 8, 15, 16, 31, 63, 64, 65, 100, 127, 128, 130, 200}
	rng := rand.New(rand.NewSource(42))
	for _, alphabet := range alphabets {
		for _, la := range lengths {
			for trial := 0; trial < 4; trial++ {
				a := randWord(rng, alphabet, la)
				var b string
				if trial%2 == 0 {
					b = mutate(rng, alphabet, a, rng.Intn(6)) // near pair
				} else {
					b = randWord(rng, alphabet, rng.Intn(la+8)) // far pair
				}
				want := LevenshteinDP(a, b)
				if got := Levenshtein(a, b); got != want {
					t.Fatalf("Levenshtein(%q,%q) = %d, DP = %d", a, b, got, want)
				}
				for _, k := range []int{0, 1, 2, want - 1, want, want + 1, la} {
					d, ok := LevenshteinBounded(a, b, k)
					dDP, okDP := LevenshteinBoundedDP(a, b, k)
					if ok != okDP || d != dDP {
						t.Fatalf("LevenshteinBounded(%q,%q,%d) = %d,%v; DP = %d,%v", a, b, k, d, ok, dDP, okDP)
					}
				}
			}
		}
	}
}

// TestMatcherMatchesDP streams many candidates through one Matcher —
// including Reset reuse and pool round-trips — and checks parity with the
// DP oracle for every (pattern, candidate, bound) triple.
func TestMatcherMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabets := [][]rune{[]rune("abcde"), []rune("héllo日本語xyz")}
	for _, alphabet := range alphabets {
		for _, pl := range []int{0, 1, 5, 16, 64, 65, 130} {
			pat := randWord(rng, alphabet, pl)
			mt := AcquireMatcher(pat)
			for i := 0; i < 24; i++ {
				var text string
				if i%3 == 0 {
					text = mutate(rng, alphabet, pat, rng.Intn(5))
				} else {
					text = randWord(rng, alphabet, rng.Intn(pl+10))
				}
				if got, want := mt.Distance(text), LevenshteinDP(pat, text); got != want {
					t.Fatalf("Matcher(%q).Distance(%q) = %d, DP = %d", pat, text, got, want)
				}
				k := rng.Intn(pl + 10)
				d, ok := mt.DistanceBounded(text, k)
				dDP, okDP := LevenshteinBoundedDP(pat, text, k)
				if ok != okDP || d != dDP {
					t.Fatalf("Matcher(%q).DistanceBounded(%q,%d) = %d,%v; DP = %d,%v", pat, text, k, d, ok, dDP, okDP)
				}
			}
			mt.Release() // next Acquire must not see stale table bits
		}
	}
}

// TestMatcherResetClearsTable reuses one Matcher across patterns with
// overlapping characters: stale equivalence bits from a previous pattern
// would corrupt the distances.
func TestMatcherResetClearsTable(t *testing.T) {
	mt := NewMatcher("abcdef")
	if d := mt.Distance("abcdef"); d != 0 {
		t.Fatalf("Distance = %d, want 0", d)
	}
	mt.Reset("abc")
	if d := mt.Distance("xbc"); d != 1 {
		t.Fatalf("after Reset: Distance(%q) = %d, want 1", "xbc", d)
	}
	if d := mt.Distance("abcdef"); d != 3 {
		t.Fatalf("after Reset: Distance(%q) = %d, want 3", "abcdef", d)
	}
	mt.Reset("日本語")
	if d := mt.Distance("日本"); d != 1 {
		t.Fatalf("after rune Reset: Distance = %d, want 1", d)
	}
	mt.Reset("abc")
	if d := mt.Distance("日本"); d != 3 {
		t.Fatalf("ascii pattern vs rune text: Distance = %d, want 3", d)
	}
}
