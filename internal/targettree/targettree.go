// Package targettree implements the §5 index for multi-FD repairing: given
// one independent set of patterns per FD, it organizes their join — the
// valid repair targets — as a tree whose levels correspond to FDs (smallest
// pattern set nearest the root) and whose root-to-leaf paths are targets.
// Each node stores the attribute values appearing in its subtree, enabling
// the RDIST+EDIST lower bound used by the best-first nearest-target search
// (Algorithm 5).
package targettree

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"ftrepair/internal/dataset"
)

// Level is the input for one FD: the attribute columns its patterns cover
// and the chosen independent set of patterns, each aligned with Attrs.
type Level struct {
	Attrs    []int
	Patterns [][]string
}

// DistFunc scores one attribute repair: the distance between the tuple's
// current value a and a candidate target value b at schema column col.
type DistFunc func(col int, a, b string) float64

type node struct {
	parent *node
	// assigned are the columns newly bound at this node with their values.
	cols []int
	vals []string
	// children of the node (empty at leaves).
	children []*node
	// sub: for every column bound somewhere strictly below this node, the
	// sorted distinct values occurring in the subtree. Used for EDIST.
	// Sorted slices beat the maps they replaced twice over: iteration is
	// much cheaper in the search hot loop, and the fixed order makes the
	// f-bound summation deterministic (map-order iteration perturbed its
	// last bits between runs, which could flip exploration order between
	// equal-cost targets).
	sub []colVals
}

// colVals is one column's sorted distinct subtree values.
type colVals struct {
	col  int
	vals []string
}

// Tree is the built target tree.
type Tree struct {
	root *node
	// cols is the union of all level attributes, sorted.
	cols []int
	// levels after sorting by pattern-set size (ascending).
	levels []Level
	// Targets counts root-to-leaf paths (valid targets).
	Targets int
}

// MaxNodes bounds the tree size: the worst-case space is the product of
// the level sizes (§5.1), which explodes when the independent sets keep
// many variants per join key (low thresholds on dirty data). Build returns
// an error at the cap; callers fall back to per-FD repair.
const MaxNodes = 1 << 21

// Build constructs the tree. Levels are sorted by |Patterns| ascending so
// the root has small fan-out (§5.1). Paths whose shared attributes do not
// agree are discarded; so are partial paths that cannot reach full depth. It
// returns an error when no valid target exists or the tree exceeds
// MaxNodes.
func Build(levels []Level) (*Tree, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("targettree: no levels")
	}
	ls := append([]Level(nil), levels...)
	sort.SliceStable(ls, func(a, b int) bool { return len(ls[a].Patterns) < len(ls[b].Patterns) })

	colSet := make(map[int]bool)
	for _, l := range ls {
		if len(l.Attrs) == 0 {
			return nil, fmt.Errorf("targettree: level with no attributes")
		}
		for _, p := range l.Patterns {
			if len(p) != len(l.Attrs) {
				return nil, fmt.Errorf("targettree: pattern arity %d != %d attributes", len(p), len(l.Attrs))
			}
		}
		for _, c := range l.Attrs {
			colSet[c] = true
		}
	}
	cols := make([]int, 0, len(colSet))
	for c := range colSet {
		cols = append(cols, c)
	}
	sort.Ints(cols)

	t := &Tree{root: &node{}, cols: cols, levels: ls}
	frontier := []*node{t.root}
	nodes := 1
	for _, l := range ls {
		var next []*node
		for _, nd := range frontier {
			bound := pathBindings(nd)
			for _, p := range l.Patterns {
				if !compatible(bound, l.Attrs, p) {
					continue
				}
				nodes++
				if nodes > MaxNodes {
					return nil, fmt.Errorf("targettree: join exceeds %d nodes; fall back to per-constraint repair", MaxNodes)
				}
				child := &node{parent: nd, cols: newCols(bound, l.Attrs), vals: nil}
				// Record only newly bound columns (shared ones are already
				// fixed by ancestors and must not be double counted).
				for i, c := range l.Attrs {
					if _, ok := bound[c]; !ok {
						child.vals = append(child.vals, p[i])
					}
				}
				nd.children = append(nd.children, child)
				next = append(next, child)
			}
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("targettree: join is empty (incompatible independent sets)")
		}
		frontier = next
	}
	t.Targets = len(frontier)
	t.prune()
	t.fillValueSets(t.root)
	return t, nil
}

// pathBindings collects the column->value assignments on the path from the
// root to nd.
func pathBindings(nd *node) map[int]string {
	bound := make(map[int]string)
	for cur := nd; cur != nil; cur = cur.parent {
		for i, c := range cur.cols {
			bound[c] = cur.vals[i]
		}
	}
	return bound
}

func compatible(bound map[int]string, attrs []int, pattern []string) bool {
	for i, c := range attrs {
		if v, ok := bound[c]; ok && v != pattern[i] {
			return false
		}
	}
	return true
}

func newCols(bound map[int]string, attrs []int) []int {
	var out []int
	for _, c := range attrs {
		if _, ok := bound[c]; !ok {
			out = append(out, c)
		}
	}
	return out
}

// prune removes internal nodes with no children (paths that died before
// reaching full depth), bottom-up.
func (t *Tree) prune() {
	depth := len(t.levels)
	var walk func(nd *node, d int) bool
	walk = func(nd *node, d int) bool {
		if d == depth {
			return true
		}
		kept := nd.children[:0]
		for _, c := range nd.children {
			if walk(c, d+1) {
				kept = append(kept, c)
			}
		}
		nd.children = kept
		return len(kept) > 0
	}
	walk(t.root, 0)
}

// fillValueSets computes, for each node, the attribute values bound in its
// strict subtree, freezing them into the node's sorted sub slices. The
// working representation is a map set per column; only the frozen slices
// are retained.
func (t *Tree) fillValueSets(nd *node) map[int]map[string]struct{} {
	sets := make(map[int]map[string]struct{})
	for _, c := range nd.children {
		childSets := t.fillValueSets(c)
		for i, col := range c.cols {
			add(sets, col, c.vals[i])
		}
		for col, vs := range childSets {
			for v := range vs {
				add(sets, col, v)
			}
		}
	}
	nd.sub = make([]colVals, 0, len(sets))
	for col, vs := range sets {
		cv := colVals{col: col, vals: make([]string, 0, len(vs))}
		for v := range vs {
			cv.vals = append(cv.vals, v)
		}
		sort.Strings(cv.vals)
		nd.sub = append(nd.sub, cv)
	}
	sort.Slice(nd.sub, func(i, j int) bool { return nd.sub[i].col < nd.sub[j].col })
	return sets
}

func add(m map[int]map[string]struct{}, col int, v string) {
	s, ok := m[col]
	if !ok {
		s = make(map[string]struct{})
		m[col] = s
	}
	s[v] = struct{}{}
}

// Target is a full assignment of the tree's columns.
type Target struct {
	Cols []int
	Vals []string
}

// pqItem is a search-frontier entry.
type pqItem struct {
	nd    *node
	f     float64 // RDIST + EDIST lower bound
	rdist float64
}

type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].f < p[j].f }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// distKey identifies one (column, candidate value) distance of a query.
type distKey struct {
	col int
	val string
}

// distMemo caches one query's attribute distances: sibling subtrees share
// most of their value sets, so each distinct (column, value) pair is
// scored once per Nearest call instead of once per node that carries it.
type distMemo struct {
	t    dataset.Tuple
	dist DistFunc
	m    map[distKey]float64
}

func (dm *distMemo) at(col int, v string) float64 {
	k := distKey{col, v}
	if d, ok := dm.m[k]; ok {
		return d
	}
	d := dm.dist(col, dm.t[col], v)
	dm.m[k] = d
	return d
}

// Nearest finds the target minimizing the summed attribute distance to t
// (Algorithm 5: best-first search with RDIST/EDIST pruning). It returns the
// target and its cost. Visited counts dequeued nodes, for the ablation
// benchmarks. The search polls cancel (nil = never) every few dozen nodes
// and, once it fires, returns the best incumbent found so far — callers
// that need the exact optimum must check cancellation themselves.
func (tr *Tree) Nearest(t dataset.Tuple, dist DistFunc, cancel <-chan struct{}) (Target, float64, int) {
	dm := &distMemo{t: t, dist: dist, m: make(map[distKey]float64)}
	q := pq{{nd: tr.root}}
	heap.Init(&q)
	bestCost := math.Inf(1)
	var bestLeaf *node
	visited := 0
	for q.Len() > 0 {
		if visited&63 == 0 && canceled(cancel) {
			break
		}
		it := heap.Pop(&q).(pqItem)
		visited++
		if it.f >= bestCost {
			continue // lower bound can't beat the incumbent
		}
		nd := it.nd
		if len(nd.children) == 0 && nd != tr.root {
			// Leaf: RDIST is the exact cost (every column bound).
			if it.rdist < bestCost {
				bestCost = it.rdist
				bestLeaf = nd
			}
			continue
		}
		for _, c := range nd.children {
			r := it.rdist
			for i, col := range c.cols {
				r += dm.at(col, c.vals[i])
			}
			f := r + edist(c, dm)
			if f < bestCost {
				heap.Push(&q, pqItem{nd: c, f: f, rdist: r})
			}
		}
	}
	if bestLeaf == nil {
		return Target{}, math.Inf(1), visited
	}
	bound := pathBindings(bestLeaf)
	out := Target{Cols: tr.cols, Vals: make([]string, len(tr.cols))}
	for i, c := range tr.cols {
		out.Vals[i] = bound[c]
	}
	return out, bestCost, visited
}

// NearestScan is the linear-scan baseline: it materializes and scores every
// target. Used for tests and the target-tree ablation. Like Nearest, it
// stops at the best incumbent when cancel fires; the visited count reflects
// only the targets actually scored, not the full target list.
func (tr *Tree) NearestScan(t dataset.Tuple, dist DistFunc, cancel <-chan struct{}) (Target, float64, int) {
	targets := tr.All()
	bestCost := math.Inf(1)
	best := -1
	visited := 0
	for i, tg := range targets {
		if i&63 == 0 && canceled(cancel) {
			break
		}
		visited++
		var c float64
		for j, col := range tg.Cols {
			c += dist(col, t[col], tg.Vals[j])
		}
		if c < bestCost {
			bestCost = c
			best = i
		}
	}
	if best < 0 {
		return Target{}, math.Inf(1), visited
	}
	return targets[best], bestCost, visited
}

// canceled reports whether the cancel channel has fired; a nil channel
// never cancels.
func canceled(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// edist is the lower bound for the columns bound strictly below nd: per
// column, the minimum distance from the query's value to any value
// occurring in the subtree.
func edist(nd *node, dm *distMemo) float64 {
	var sum float64
	for _, sv := range nd.sub {
		best := math.Inf(1)
		for _, v := range sv.vals {
			if d := dm.at(sv.col, v); d < best {
				best = d
				// Distances are non-negative; the per-column minimum
				// cannot improve past zero.
				if best <= 0 {
					break
				}
			}
		}
		sum += best
	}
	return sum
}

// All materializes every target (root-to-leaf path) of the tree.
func (tr *Tree) All() []Target {
	var out []Target
	var leaves []*node
	var collect func(nd *node)
	collect = func(nd *node) {
		if len(nd.children) == 0 && nd.parent != nil {
			leaves = append(leaves, nd)
			return
		}
		for _, c := range nd.children {
			collect(c)
		}
	}
	collect(tr.root)
	for _, leaf := range leaves {
		bound := pathBindings(leaf)
		tg := Target{Cols: tr.cols, Vals: make([]string, len(tr.cols))}
		for i, c := range tr.cols {
			tg.Vals[i] = bound[c]
		}
		out = append(out, tg)
	}
	return out
}

// Cols returns the sorted union of attribute columns covered by the tree.
func (tr *Tree) Cols() []int { return tr.cols }
