package targettree_test

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/gen"
	"ftrepair/internal/targettree"
)

// paperLevels returns the Fig-4 inputs: the chosen independent sets of phi2
// and phi3 over the Citizens schema (City=3, Street=4, District=5, State=6).
func paperLevels() []targettree.Level {
	return []targettree.Level{
		{ // phi3: City,Street -> District
			Attrs: []int{3, 4, 5},
			Patterns: [][]string{
				{"New York", "Main", "Manhattan"},
				{"New York", "Western", "Queens"},
				{"Boston", "Main", "Financial"},
				{"Boston", "Arlingto", "Brookside"},
			},
		},
		{ // phi2: City -> State
			Attrs: []int{3, 6},
			Patterns: [][]string{
				{"New York", "NY"},
				{"Boston", "MA"},
			},
		},
	}
}

func citizensDist() targettree.DistFunc {
	dirty, _ := gen.Citizens()
	cfg := fd.DefaultDistConfig(dirty)
	return cfg.AttrDist
}

func TestBuildPaperTree(t *testing.T) {
	tr, err := targettree.Build(paperLevels())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Targets != 4 {
		t.Fatalf("targets = %d, want 4", tr.Targets)
	}
	if got := tr.Cols(); !reflect.DeepEqual(got, []int{3, 4, 5, 6}) {
		t.Fatalf("cols = %v", got)
	}
	all := tr.All()
	if len(all) != 4 {
		t.Fatalf("All = %d targets", len(all))
	}
	// Every target joins a phi2 pattern with a compatible phi3 pattern.
	var rendered []string
	for _, tg := range all {
		rendered = append(rendered, tg.Vals[0]+"|"+tg.Vals[1]+"|"+tg.Vals[2]+"|"+tg.Vals[3])
	}
	sort.Strings(rendered)
	want := []string{
		"Boston|Arlingto|Brookside|MA",
		"Boston|Main|Financial|MA",
		"New York|Main|Manhattan|NY",
		"New York|Western|Queens|NY",
	}
	if !reflect.DeepEqual(rendered, want) {
		t.Fatalf("targets = %v", rendered)
	}
}

func TestNearestExample14(t *testing.T) {
	// Example 14: tuple t4 = (New York, Western, Queens, MA) resolves to
	// (New York, Western, Queens, NY): only State changes.
	tr, err := targettree.Build(paperLevels())
	if err != nil {
		t.Fatal(err)
	}
	dirty, _ := gen.Citizens()
	dist := citizensDist()
	t4 := dirty.Tuples[3]
	tg, cost, visited := tr.Nearest(t4, dist, nil)
	if tg.Vals[0] != "New York" || tg.Vals[1] != "Western" || tg.Vals[2] != "Queens" || tg.Vals[3] != "NY" {
		t.Fatalf("nearest = %v", tg.Vals)
	}
	// Cost: only State differs, dist(MA, NY) = 1 (two edits over two runes).
	if math.Abs(cost-1) > 1e-9 {
		t.Fatalf("cost = %v", cost)
	}
	if visited <= 0 {
		t.Fatal("no nodes visited")
	}
	// t5 = (Boston, Main, Manhattan, NY) resolves to the Manhattan target:
	// repairing City is cheapest and fixes both FDs (Example 3).
	t5 := dirty.Tuples[4]
	tg5, _, _ := tr.Nearest(t5, dist, nil)
	if tg5.Vals[0] != "New York" || tg5.Vals[2] != "Manhattan" {
		t.Fatalf("t5 nearest = %v", tg5.Vals)
	}
}

func TestNearestMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	vals := []string{"alpha", "beta", "gamma", "delta", "omega"}
	dist := func(col int, a, b string) float64 {
		if a == b {
			return 0
		}
		// Deterministic pseudo-distance independent of call order.
		h := 0
		for _, r := range a + "|" + b {
			h = h*31 + int(r)
		}
		if h < 0 {
			h = -h
		}
		return float64(h%100)/100 + 0.01
	}
	for trial := 0; trial < 25; trial++ {
		// Random levels over columns {0,1},{1,2},{2,3}: chained overlaps.
		mk := func(attrs []int, n int) targettree.Level {
			l := targettree.Level{Attrs: attrs}
			seen := map[string]bool{}
			for i := 0; i < n; i++ {
				p := make([]string, len(attrs))
				for j := range p {
					p[j] = vals[rng.Intn(len(vals))]
				}
				k := p[0] + "," + p[len(p)-1]
				if seen[k] {
					continue
				}
				seen[k] = true
				l.Patterns = append(l.Patterns, p)
			}
			return l
		}
		levels := []targettree.Level{
			mk([]int{0, 1}, 4),
			mk([]int{1, 2}, 5),
			mk([]int{2, 3}, 4),
		}
		tr, err := targettree.Build(levels)
		if err != nil {
			continue // empty join is a legal outcome of random inputs
		}
		tuple := dataset.Tuple{
			vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))],
			vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))],
		}
		tgFast, costFast, visitedFast := tr.Nearest(tuple, dist, nil)
		tgSlow, costSlow, scanned := tr.NearestScan(tuple, dist, nil)
		if math.Abs(costFast-costSlow) > 1e-9 {
			t.Fatalf("trial %d: Nearest = %v (%v), scan = %v (%v)", trial, costFast, tgFast.Vals, costSlow, tgSlow.Vals)
		}
		if visitedFast <= 0 || scanned != tr.Targets {
			t.Fatalf("trial %d: counters visited=%d scanned=%d targets=%d", trial, visitedFast, scanned, tr.Targets)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := targettree.Build(nil); err == nil {
		t.Fatal("no levels accepted")
	}
	if _, err := targettree.Build([]targettree.Level{{Attrs: nil}}); err == nil {
		t.Fatal("empty attrs accepted")
	}
	if _, err := targettree.Build([]targettree.Level{{Attrs: []int{0}, Patterns: [][]string{{"a", "b"}}}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	// Incompatible levels: shared column with disjoint values.
	_, err := targettree.Build([]targettree.Level{
		{Attrs: []int{0}, Patterns: [][]string{{"x"}}},
		{Attrs: []int{0, 1}, Patterns: [][]string{{"y", "z"}}},
	})
	if err == nil {
		t.Fatal("empty join accepted")
	}
}

func TestDeadBranchPruned(t *testing.T) {
	// Level 1 pattern "b" joins level 2, but then dies at level 3: the
	// (b,?) branch must be pruned and only targets through "a" remain.
	levels := []targettree.Level{
		{Attrs: []int{0}, Patterns: [][]string{{"a"}, {"b"}}},
		{Attrs: []int{0, 1}, Patterns: [][]string{{"a", "1"}, {"b", "2"}}},
		{Attrs: []int{1, 2}, Patterns: [][]string{{"1", "x"}}},
	}
	tr, err := targettree.Build(levels)
	if err != nil {
		t.Fatal(err)
	}
	all := tr.All()
	if len(all) != 1 {
		t.Fatalf("targets = %v", all)
	}
	if all[0].Vals[0] != "a" || all[0].Vals[2] != "x" {
		t.Fatalf("target = %v", all[0].Vals)
	}
	// Nearest on the pruned tree still works.
	dist := func(col int, a, b string) float64 {
		if a == b {
			return 0
		}
		return 1
	}
	_, cost, _ := tr.Nearest(dataset.Tuple{"a", "1", "x"}, dist, nil)
	if cost != 0 {
		t.Fatalf("cost = %v", cost)
	}
}

func TestSingleLevelTree(t *testing.T) {
	levels := []targettree.Level{
		{Attrs: []int{2, 5}, Patterns: [][]string{{"p", "q"}, {"r", "s"}}},
	}
	tr, err := targettree.Build(levels)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Targets != 2 {
		t.Fatalf("targets = %d", tr.Targets)
	}
	dist := func(col int, a, b string) float64 {
		if a == b {
			return 0
		}
		return 1
	}
	tg, cost, _ := tr.Nearest(dataset.Tuple{"", "", "r", "", "", "zzz"}, dist, nil)
	if tg.Vals[0] != "r" || cost != 1 {
		t.Fatalf("nearest = %v cost %v", tg.Vals, cost)
	}
}

func TestNearestCanceled(t *testing.T) {
	tr, err := targettree.Build(paperLevels())
	if err != nil {
		t.Fatal(err)
	}
	dirty, _ := gen.Citizens()
	dist := citizensDist()
	cancel := make(chan struct{})
	close(cancel)
	// A fired channel stops the search before any node is dequeued, so no
	// incumbent exists and the cost is +Inf.
	if _, cost, _ := tr.Nearest(dirty.Tuples[3], dist, cancel); !math.IsInf(cost, 1) {
		t.Fatalf("canceled Nearest returned cost %v, want +Inf", cost)
	}
	if _, cost, _ := tr.NearestScan(dirty.Tuples[3], dist, cancel); !math.IsInf(cost, 1) {
		t.Fatalf("canceled NearestScan returned cost %v, want +Inf", cost)
	}
}
