// Package vgraph builds the paper's graph model (§3): for an FD φ, vertices
// are the distinct projections of the database onto φ's attributes (tuple
// grouping), and an undirected edge connects two vertices whose patterns are
// an FT-violation, weighted by their distance. Repair costs between grouped
// vertices scale the distance by the multiplicity of the vertex being
// repaired, realizing the paper's directed grouped graph G'.
//
// Construction is the pipeline's bottleneck (§6), so Build fans candidate
// verification out across a worker pool. The result is deterministic: the
// same graph, bit for bit, for any worker count — see Options.Workers.
//
// The graph is stored CSR-style: all adjacency entries live in one flat
// []Edge arena indexed by a per-vertex offset table, and vertices are a
// flat []Vertex slice. Every hot consumer (mis expansion, greedy growth,
// plan costing) addresses vertices by dense index, so traversal is
// pointer-free; the byKey map survives only for point lookups by projection
// key. A pooled Builder reuses the per-worker edge lists and the CSR
// counting scratch across builds, which matters to the incremental engine's
// frequent small shard rebuilds.
package vgraph

import (
	"runtime"
	"sort"
	"sync"

	"ftrepair/internal/bitset"
	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/obs"
	"ftrepair/internal/strsim"
)

// Vertex is a pattern vertex: one distinct projection of the relation onto
// the FD's attributes, together with the rows carrying it.
type Vertex struct {
	// Rep is a representative tuple holding the pattern's cell values (the
	// first tuple encountered with this projection).
	Rep dataset.Tuple
	// Rows lists the indices of all tuples sharing the projection.
	Rows []int
}

// Mult is the number of tuples grouped into the vertex.
func (v *Vertex) Mult() int { return len(v.Rows) }

// Edge is a weighted adjacency entry. W is the repair weight
// ω(u,v) = cost(u^φ, v^φ): the unweighted Eq-3 distance summed over the
// FD's attributes. D is the weighted Eq-2 distance that put the pair inside
// the threshold — the violation distance — recorded at build time so
// consumers (repair.Detect) need not re-derive it. (Edge existence is
// decided by D against τ; W is the repair cost model.)
type Edge struct {
	To int
	W  float64
	D  float64
}

// Graph is the violation graph of one FD over one relation.
type Graph struct {
	FD       *fd.FD
	Cfg      *fd.DistConfig
	Tau      float64
	Vertices []Vertex
	// CSR adjacency arena: edges holds every directed adjacency entry,
	// grouped by source vertex and sorted by To within a vertex;
	// eoff[u]:eoff[u+1] bounds vertex u's slice.
	edges []Edge
	eoff  []int32
	byKey map[string]int
	// keys[v] is the interned projection key of vertex v — the exact string
	// byKey maps from, shared, so key-class operations never re-derive it.
	keys []string
	// canon maps each vertex to the canonical vertex of its key class: nil
	// (identity) for grouped graphs, where keys are unique; for ungrouped
	// graphs the vertex byKey resolves the shared key to. Membership tests
	// by projection (repair's chosen-set bitsets) canonicalize through it.
	canon []int32
	// ungrouped marks graphs built with Options.DisableGrouping, where
	// distinct vertices may carry equal projections and must not be
	// connected.
	ungrouped bool
	// Probe-index state, retained after an indexed build so point queries
	// (ViolatorCount on unseen tuples) reuse the q-gram filter instead of
	// scanning every vertex. probe is -1 when no index was built.
	probe   int
	attrTau float64
	ix      *strsim.Index
	vals    []string // distinct probe values in index-id order
	byVal   [][]int  // probe value id -> vertex indices carrying it
}

// Options tunes graph construction.
type Options struct {
	// DisableIndex forces the all-pairs comparison, for ablation.
	DisableIndex bool
	// DisableGrouping gives every tuple its own vertex instead of grouping
	// tuples with equal projections (§3 "Tuple grouping"), for the
	// ablation quantifying how much grouping saves. Tuples with equal
	// projections never FT-violate, so no edges connect them.
	DisableGrouping bool
	// Workers caps the number of concurrent verification workers. 0 means
	// GOMAXPROCS, 1 forces the sequential path. Any value produces the
	// identical graph: workers emit private edge lists that are merged and
	// per-vertex sorted, and each edge's existence, weight, and distance
	// are pure functions of the pair.
	Workers int
	// Cancel, when it fires mid-build, stops candidate verification
	// cooperatively. The returned graph then has all its vertices but only
	// the edges verified so far; callers that pass Cancel must poll it
	// after Build and treat the graph as partial when it fired.
	Cancel <-chan struct{}
	// Trace, when non-nil, receives a graphbuild span per Build call.
	// Purely observational: never consulted by construction decisions.
	Trace *obs.Trace
	// Worker is the 1-based build-slot label for the trace span when
	// several graphs build concurrently; 0 (the zero value) leaves the
	// span unlabeled.
	Worker int
}

// Builder carries the reusable construction scratch — per-worker edge
// record lists and the CSR degree/cursor counters — so repeated builds
// (benchmark loops, incremental shard rebuilds) do not reallocate it. A
// Builder is not safe for concurrent use; the package-level Build draws
// from a pool, which is the idiomatic entry point.
type Builder struct {
	lists [][]edgeRec
	deg   []int32
}

// NewBuilder returns an empty Builder. Most callers should use the
// package-level Build, which pools Builders automatically.
func NewBuilder() *Builder { return &Builder{} }

var builderPool = sync.Pool{New: func() any { return NewBuilder() }}

// Build constructs the violation graph of f over rel at threshold tau using
// a pooled Builder.
func Build(rel *dataset.Relation, f *fd.FD, cfg *fd.DistConfig, tau float64, opts Options) *Graph {
	b := builderPool.Get().(*Builder)
	g := b.Build(rel, f, cfg, tau, opts)
	builderPool.Put(b)
	return g
}

// Build constructs the violation graph of f over rel at threshold tau,
// reusing the Builder's scratch. The returned Graph owns all its memory;
// only construction-time buffers are retained by the Builder.
func (b *Builder) Build(rel *dataset.Relation, f *fd.FD, cfg *fd.DistConfig, tau float64, opts Options) *Graph {
	sp := obs.Begin(opts.Trace, obs.PhaseGraphBuild)
	sp.SetFD(f.String())
	if opts.Worker > 0 {
		sp.SetWorker(opts.Worker - 1)
	}
	defer sp.End()

	g := &Graph{FD: f, Cfg: cfg, Tau: tau, byKey: make(map[string]int), probe: -1}
	for i, t := range rel.Tuples {
		k := t.Key(f.Attrs())
		vi, ok := g.byKey[k]
		if !ok || opts.DisableGrouping {
			vi = len(g.Vertices)
			g.byKey[k] = vi
			g.Vertices = append(g.Vertices, Vertex{Rep: t})
			g.keys = append(g.keys, k)
		}
		g.Vertices[vi].Rows = append(g.Vertices[vi].Rows, i)
	}

	g.ungrouped = opts.DisableGrouping
	if g.ungrouped {
		// Key classes are non-trivial only without grouping: resolve each
		// vertex to the one byKey elects for its key.
		g.canon = make([]int32, len(g.Vertices))
		for vi := range g.Vertices {
			g.canon[vi] = int32(g.byKey[g.keys[vi]])
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(g.Vertices) {
		workers = len(g.Vertices)
	}
	if workers < 1 {
		workers = 1
	}
	probe := g.chooseProbe(rel)
	if opts.DisableIndex || probe < 0 {
		g.mergeCSR(b, g.fanOut(b, workers, opts.Cancel, g.allPairsRange))
	} else {
		g.indexProbe(probe)
		g.mergeCSR(b, g.fanOut(b, workers, opts.Cancel, g.indexedRange))
	}

	// Flush build totals into the default registry here — the single flush
	// point for graph metrics, covering every Build regardless of caller
	// (repairs, Detect, benchmarks). FlushRunStats deliberately skips the
	// vertices/edges Stats keys for the same reason.
	edges := g.NumEdges()
	obs.Pipeline.GraphBuilds.Inc()
	obs.Pipeline.GraphVertices.AddInt(len(g.Vertices))
	obs.Pipeline.GraphEdges.AddInt(edges)
	sp.Add("vertices", int64(len(g.Vertices)))
	sp.Add("edges", int64(edges))
	sp.Add("workers", int64(workers))
	return g
}

// chooseProbe picks a string attribute of the FD to index, preferring LHS
// attributes (their weight is usually at least the RHS weight, giving the
// tightest per-attribute threshold). Returns -1 when no string attribute
// exists, the per-attribute threshold would not prune (τ/w >= 1), or the
// distance flavor is not plain Levenshtein (the q-gram index verifies with
// Levenshtein; OSA distances can be smaller, so the filter would miss
// candidates).
func (g *Graph) chooseProbe(rel *dataset.Relation) int {
	if g.Cfg.Edit != fd.EditLevenshtein {
		return -1
	}
	try := func(cols []int, w float64) int {
		if w <= 0 || g.Tau/w >= 1 {
			return -1
		}
		for _, c := range cols {
			if rel.Schema.Attr(c).Type == dataset.String {
				return c
			}
		}
		return -1
	}
	if c := try(g.FD.LHS, g.Cfg.WL); c >= 0 {
		return c
	}
	return try(g.FD.RHS, g.Cfg.WR)
}

// indexProbe builds the q-gram index over the distinct probe-attribute
// values, in first-occurrence vertex order so value ids are deterministic.
func (g *Graph) indexProbe(probe int) {
	w := g.Cfg.WL
	if !contains(g.FD.LHS, probe) {
		w = g.Cfg.WR
	}
	g.probe = probe
	g.attrTau = g.Tau / w
	g.ix = strsim.NewIndex(2)
	valID := make(map[string]int, len(g.Vertices))
	for vi := range g.Vertices {
		val := g.Vertices[vi].Rep[probe]
		id, ok := valID[val]
		if !ok {
			id = g.ix.Add(val)
			valID[val] = id
			g.vals = append(g.vals, val)
			g.byVal = append(g.byVal, nil)
		}
		g.byVal[id] = append(g.byVal[id], vi)
	}
}

// distWithin evaluates the FD distance with early exit once the running sum
// exceeds tau (see fd.DistConfig.DistWithin).
func (g *Graph) distWithin(t1, t2 dataset.Tuple) (float64, bool) {
	return g.Cfg.DistWithin(g.FD, g.Tau, t1, t2)
}

// PatternDist is the Eq-3 repair cost between the patterns of two vertices:
// the unweighted sum of per-attribute distances over the FD's attributes.
func (g *Graph) PatternDist(u, v int) float64 {
	var sum float64
	tu, tv := g.Vertices[u].Rep, g.Vertices[v].Rep
	for _, c := range g.FD.Attrs() {
		sum += g.Cfg.RepairDist(c, tu[c], tv[c])
	}
	return sum
}

// edgeRec is one verified edge produced by a build worker, buffered locally
// until the single-threaded merge.
type edgeRec struct {
	u, v int
	w, d float64
}

// verifyPair checks the candidate pair (i, j) and, if it FT-violates,
// returns the edge with its repair weight and violation distance. Pure in
// the pair (the distance cache only memoizes, never changes, results), so
// workers can verify pairs in any order and partition.
func (g *Graph) verifyPair(i, j int) (edgeRec, bool) {
	if g.ungrouped && g.FD.ProjEqual(g.Vertices[i].Rep, g.Vertices[j].Rep) {
		return edgeRec{}, false
	}
	d, ok := g.distWithin(g.Vertices[i].Rep, g.Vertices[j].Rep)
	if !ok {
		return edgeRec{}, false
	}
	return edgeRec{u: i, v: j, w: g.PatternDist(i, j), d: d}, true
}

// verifyPairMT is verifyPair with vertex i's pattern held fixed in a
// PairMatcher; the build ranges stream every candidate j through it so i's
// bit-parallel tables are built once, not once per pair. Same edge, weight,
// and distance as verifyPair.
func (g *Graph) verifyPairMT(pm *fd.PairMatcher, i, j int) (edgeRec, bool) {
	if g.ungrouped && g.FD.ProjEqual(g.Vertices[i].Rep, g.Vertices[j].Rep) {
		return edgeRec{}, false
	}
	tj := g.Vertices[j].Rep
	d, ok := pm.DistWithin(g.Tau, tj)
	if !ok {
		return edgeRec{}, false
	}
	var w float64
	for _, c := range g.FD.Attrs() {
		w += pm.RepairDist(c, tj)
	}
	return edgeRec{u: i, v: j, w: w, d: d}, true
}

// fanOut runs the given range verifier on `workers` goroutines, worker w
// owning the stride-partitioned slice {w, w+workers, w+2*workers, ...} of
// the outer loop. Stride partitioning balances the triangular all-pairs
// loop without a work queue, and each worker's output is a deterministic
// function of (start, stride), so the merged edge set does not depend on
// scheduling. The per-worker record lists come from the Builder and keep
// their capacity across builds.
func (g *Graph) fanOut(b *Builder, workers int, cancel <-chan struct{}, run func(dst []edgeRec, start, stride int, cancel <-chan struct{}) []edgeRec) [][]edgeRec {
	if cap(b.lists) < workers {
		lists := make([][]edgeRec, workers)
		copy(lists, b.lists)
		b.lists = lists
	}
	b.lists = b.lists[:workers]
	out := b.lists
	if workers == 1 {
		out[0] = run(out[0][:0], 0, 1, cancel)
		return out
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out[w] = run(out[w][:0], w, workers, cancel)
		}(w)
	}
	wg.Wait()
	return out
}

// mergeCSR folds the per-worker edge lists into the CSR arena: count
// degrees, prefix-sum the offset table, place both directions of every
// record, then sort each vertex's slice by To. Merge order is irrelevant to
// the final graph: each undirected edge appears in exactly one worker's
// list, and To is a strict sort key since a vertex pair carries at most one
// edge — so the arena is bit-identical at any worker count.
func (g *Graph) mergeCSR(b *Builder, lists [][]edgeRec) {
	n := len(g.Vertices)
	if cap(b.deg) < n {
		b.deg = make([]int32, n)
	}
	b.deg = b.deg[:n]
	deg := b.deg
	for i := range deg {
		deg[i] = 0
	}
	total := 0
	for _, recs := range lists {
		total += 2 * len(recs)
		for _, r := range recs {
			deg[r.u]++
			deg[r.v]++
		}
	}
	g.eoff = make([]int32, n+1)
	for i := 0; i < n; i++ {
		g.eoff[i+1] = g.eoff[i] + deg[i]
	}
	g.edges = make([]Edge, total)
	// Reuse deg as the per-vertex write cursor.
	cur := deg
	for i := 0; i < n; i++ {
		cur[i] = g.eoff[i]
	}
	for _, recs := range lists {
		for _, r := range recs {
			g.edges[cur[r.u]] = Edge{To: r.v, W: r.w, D: r.d}
			cur[r.u]++
			g.edges[cur[r.v]] = Edge{To: r.u, W: r.w, D: r.d}
			cur[r.v]++
		}
	}
	for i := 0; i < n; i++ {
		sortEdges(g.edges[g.eoff[i]:g.eoff[i+1]])
	}
}

// sortEdges orders one vertex's adjacency slice by To: insertion sort for
// the short lists that dominate violation graphs (no closure allocation),
// sort.Slice beyond that. To values are unique within a slice, so any
// sorting algorithm yields the identical order.
func sortEdges(es []Edge) {
	if len(es) <= 32 {
		for i := 1; i < len(es); i++ {
			e := es[i]
			j := i - 1
			for j >= 0 && es[j].To > e.To {
				es[j+1] = es[j]
				j--
			}
			es[j+1] = e
		}
		return
	}
	sort.Slice(es, func(a, b int) bool { return es[a].To < es[b].To })
}

// buildCanceled is the cooperative poll used inside build loops.
func buildCanceled(cancel <-chan struct{}) bool {
	if cancel == nil {
		return false
	}
	select {
	case <-cancel:
		return true
	default:
		return false
	}
}

// allPairsRange verifies every pair (i, j), i < j, whose outer index i is
// congruent to start modulo stride. Cancellation is polled every 1024
// candidate pairs.
func (g *Graph) allPairsRange(recs []edgeRec, start, stride int, cancel <-chan struct{}) []edgeRec {
	n := len(g.Vertices)
	pairs := 0
	for i := start; i < n; i += stride {
		pm := g.Cfg.AcquirePairMatcher(g.FD, g.Vertices[i].Rep)
		for j := i + 1; j < n; j++ {
			pairs++
			if pairs&1023 == 0 && buildCanceled(cancel) {
				pm.Release()
				return recs
			}
			if rec, ok := g.verifyPairMT(pm, i, j); ok {
				recs = append(recs, rec)
			}
		}
		pm.Release()
	}
	return recs
}

// indexedRange runs the q-gram candidate generation for every probe value
// id congruent to start modulo stride. Each distinct value *pair* is
// handled exactly once (by the lower id), so the emitted edges partition
// across workers.
// The vi loop is hoisted outside the match loop so one PairMatcher serves
// vertex vi against every candidate; the emitted pair set is identical (the
// (m, vi, vj) guards are order-independent), and the merge sorts per-vertex
// adjacency anyway, so the final graph is unchanged.
func (g *Graph) indexedRange(recs []edgeRec, start, stride int, cancel <-chan struct{}) []edgeRec {
	pairs := 0
	for id := start; id < len(g.vals); id += stride {
		if buildCanceled(cancel) {
			return recs
		}
		matches := g.ix.SearchNormalized(g.vals[id], g.attrTau)
		for _, vi := range g.byVal[id] {
			pm := g.Cfg.AcquirePairMatcher(g.FD, g.Vertices[vi].Rep)
			for _, m := range matches {
				if m.ID < id {
					continue // handle each value pair once (m.ID == id covers same-value vertices)
				}
				for _, vj := range g.byVal[m.ID] {
					if m.ID == id && vj <= vi {
						continue // same value bucket: avoid double visits and self loops
					}
					pairs++
					if pairs&1023 == 0 && buildCanceled(cancel) {
						pm.Release()
						return recs
					}
					if rec, ok := g.verifyPairMT(pm, vi, vj); ok {
						recs = append(recs, rec)
					}
				}
			}
			pm.Release()
		}
	}
	return recs
}

func contains(cols []int, c int) bool {
	for _, x := range cols {
		if x == c {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of vertex u, sorted by vertex id: a
// view into the CSR arena. Callers must not modify it.
func (g *Graph) Neighbors(u int) []Edge { return g.edges[g.eoff[u]:g.eoff[u+1]] }

// Degree is the number of FT-violation partners of u.
func (g *Graph) Degree(u int) int { return int(g.eoff[u+1] - g.eoff[u]) }

// Edge reports the weight of edge (u,v) if present.
func (g *Graph) Edge(u, v int) (float64, bool) {
	es := g.Neighbors(u)
	lo, hi := 0, len(es)
	for lo < hi {
		mid := (lo + hi) / 2
		if es[mid].To < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(es) && es[lo].To == v {
		return es[lo].W, true
	}
	return 0, false
}

// NumEdges counts undirected edges.
func (g *Graph) NumEdges() int { return len(g.edges) / 2 }

// RepairCost is the cost of repairing every tuple grouped in vertex `from`
// to the pattern of vertex `to`: multiplicity times pattern distance (the
// directed grouped-graph weight of §3).
func (g *Graph) RepairCost(from, to int) (float64, bool) {
	w, ok := g.Edge(from, to)
	if !ok {
		return 0, false
	}
	return float64(g.Vertices[from].Mult()) * w, true
}

// Canon returns the canonical vertex of v's projection-key class: v itself
// for grouped graphs (keys are unique), the vertex Lookup resolves the
// shared key to when grouping is disabled. Two vertices carry equal
// projections iff their Canon values coincide.
func (g *Graph) Canon(v int) int {
	if g.canon == nil {
		return v
	}
	return int(g.canon[v])
}

// Components returns the connected components of the violation graph as
// sorted vertex-id slices, ordered by smallest member.
func (g *Graph) Components() [][]int {
	seen := bitset.New(len(g.Vertices))
	var out [][]int
	for s := range g.Vertices {
		if seen.Has(s) {
			continue
		}
		var comp []int
		stack := []int{s}
		seen.Set(s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, e := range g.Neighbors(u) {
				if !seen.Has(e.To) {
					seen.Set(e.To)
					stack = append(stack, e.To)
				}
			}
		}
		sort.Ints(comp)
		out = append(out, comp)
	}
	return out
}

// Lookup returns the vertex carrying the same projection as t, if any.
func (g *Graph) Lookup(t dataset.Tuple) (int, bool) {
	v, ok := g.byKey[t.Key(g.FD.Attrs())]
	return v, ok
}

// ViolatorCount counts the vertices whose pattern FT-violates with t's
// projection: the projections differ and their weighted distance is within
// the graph's threshold. t need not correspond to an existing pattern, so
// this also scores hypothetical repairs (the "triggered violations" of
// §4.4).
//
// For unseen tuples of an indexed graph, the retained q-gram probe index
// narrows the scan: any vertex within total distance τ is within τ/w on the
// probe attribute, so probing at attrTau loses no candidates and the O(V)
// scan drops to the candidates sharing q-grams with t's probe value.
func (g *Graph) ViolatorCount(t dataset.Tuple) int {
	if v, ok := g.Lookup(t); ok {
		return g.Degree(v)
	}
	count := 0
	pm := g.Cfg.AcquirePairMatcher(g.FD, t)
	defer pm.Release()
	if g.ix != nil {
		for _, m := range g.ix.SearchNormalized(t[g.probe], g.attrTau) {
			for _, u := range g.byVal[m.ID] {
				if _, ok := pm.DistWithin(g.Tau, g.Vertices[u].Rep); ok {
					count++
				}
			}
		}
		return count
	}
	for u := range g.Vertices {
		if _, ok := pm.DistWithin(g.Tau, g.Vertices[u].Rep); ok {
			count++
		}
	}
	return count
}

// FTAdjacent reports whether tuple t's projection FT-violates vertex v's
// pattern.
func (g *Graph) FTAdjacent(t dataset.Tuple, v int) bool {
	if u, ok := g.Lookup(t); ok {
		if u == v {
			return false
		}
		_, adjacent := g.Edge(u, v)
		return adjacent
	}
	_, within := g.distWithin(t, g.Vertices[v].Rep)
	return within
}

// OrderByFrequency returns vertex ids sorted by multiplicity descending
// (ties by id), the access order §3.1 recommends for the expansion
// algorithm: high-frequency patterns reach good upper bounds early.
func (g *Graph) OrderByFrequency() []int {
	order := make([]int, len(g.Vertices))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ma, mb := g.Vertices[order[a]].Mult(), g.Vertices[order[b]].Mult()
		if ma != mb {
			return ma > mb
		}
		return order[a] < order[b]
	})
	return order
}
