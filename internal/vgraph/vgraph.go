// Package vgraph builds the paper's graph model (§3): for an FD φ, vertices
// are the distinct projections of the database onto φ's attributes (tuple
// grouping), and an undirected edge connects two vertices whose patterns are
// an FT-violation, weighted by their distance. Repair costs between grouped
// vertices scale the distance by the multiplicity of the vertex being
// repaired, realizing the paper's directed grouped graph G'.
package vgraph

import (
	"sort"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/strsim"
)

// Vertex is a pattern vertex: one distinct projection of the relation onto
// the FD's attributes, together with the rows carrying it.
type Vertex struct {
	// Rep is a representative tuple holding the pattern's cell values (the
	// first tuple encountered with this projection).
	Rep dataset.Tuple
	// Rows lists the indices of all tuples sharing the projection.
	Rows []int
}

// Mult is the number of tuples grouped into the vertex.
func (v *Vertex) Mult() int { return len(v.Rows) }

// Edge is a weighted adjacency entry. W is the repair weight
// ω(u,v) = cost(u^φ, v^φ): the unweighted Eq-3 distance summed over the
// FD's attributes. (Edge existence is decided by the weighted Eq-2 distance
// against τ; edge weight is the repair cost model.)
type Edge struct {
	To int
	W  float64
}

// Graph is the violation graph of one FD over one relation.
type Graph struct {
	FD       *fd.FD
	Cfg      *fd.DistConfig
	Tau      float64
	Vertices []*Vertex
	adj      [][]Edge
	byKey    map[string]int
	// ungrouped marks graphs built with Options.DisableGrouping, where
	// distinct vertices may carry equal projections and must not be
	// connected.
	ungrouped bool
}

// Options tunes graph construction.
type Options struct {
	// DisableIndex forces the all-pairs comparison, for ablation.
	DisableIndex bool
	// DisableGrouping gives every tuple its own vertex instead of grouping
	// tuples with equal projections (§3 "Tuple grouping"), for the
	// ablation quantifying how much grouping saves. Tuples with equal
	// projections never FT-violate, so no edges connect them.
	DisableGrouping bool
}

// Build constructs the violation graph of f over rel at threshold tau.
func Build(rel *dataset.Relation, f *fd.FD, cfg *fd.DistConfig, tau float64, opts Options) *Graph {
	g := &Graph{FD: f, Cfg: cfg, Tau: tau, byKey: make(map[string]int)}
	for i, t := range rel.Tuples {
		k := t.Key(f.Attrs())
		vi, ok := g.byKey[k]
		if !ok || opts.DisableGrouping {
			vi = len(g.Vertices)
			g.byKey[k] = vi
			g.Vertices = append(g.Vertices, &Vertex{Rep: t})
		}
		g.Vertices[vi].Rows = append(g.Vertices[vi].Rows, i)
	}
	g.adj = make([][]Edge, len(g.Vertices))

	g.ungrouped = opts.DisableGrouping
	probe := g.chooseProbe(rel)
	if opts.DisableIndex || probe < 0 {
		g.buildAllPairs()
	} else {
		g.buildIndexed(probe)
	}
	for _, es := range g.adj {
		sort.Slice(es, func(a, b int) bool { return es[a].To < es[b].To })
	}
	return g
}

// chooseProbe picks a string attribute of the FD to index, preferring LHS
// attributes (their weight is usually at least the RHS weight, giving the
// tightest per-attribute threshold). Returns -1 when no string attribute
// exists, the per-attribute threshold would not prune (τ/w >= 1), or the
// distance flavor is not plain Levenshtein (the q-gram index verifies with
// Levenshtein; OSA distances can be smaller, so the filter would miss
// candidates).
func (g *Graph) chooseProbe(rel *dataset.Relation) int {
	if g.Cfg.Edit != fd.EditLevenshtein {
		return -1
	}
	try := func(cols []int, w float64) int {
		if w <= 0 || g.Tau/w >= 1 {
			return -1
		}
		for _, c := range cols {
			if rel.Schema.Attr(c).Type == dataset.String {
				return c
			}
		}
		return -1
	}
	if c := try(g.FD.LHS, g.Cfg.WL); c >= 0 {
		return c
	}
	return try(g.FD.RHS, g.Cfg.WR)
}

// distWithin evaluates the FD distance with early exit once the running sum
// exceeds tau (see fd.DistConfig.DistWithin).
func (g *Graph) distWithin(t1, t2 dataset.Tuple) (float64, bool) {
	return g.Cfg.DistWithin(g.FD, g.Tau, t1, t2)
}

// PatternDist is the Eq-3 repair cost between the patterns of two vertices:
// the unweighted sum of per-attribute distances over the FD's attributes.
func (g *Graph) PatternDist(u, v int) float64 {
	var sum float64
	tu, tv := g.Vertices[u].Rep, g.Vertices[v].Rep
	for _, c := range g.FD.Attrs() {
		sum += g.Cfg.RepairDist(c, tu[c], tv[c])
	}
	return sum
}

func (g *Graph) buildAllPairs() {
	for i := 0; i < len(g.Vertices); i++ {
		for j := i + 1; j < len(g.Vertices); j++ {
			if g.ungrouped && g.FD.ProjEqual(g.Vertices[i].Rep, g.Vertices[j].Rep) {
				continue
			}
			if _, ok := g.distWithin(g.Vertices[i].Rep, g.Vertices[j].Rep); ok {
				g.addEdge(i, j, g.PatternDist(i, j))
			}
		}
	}
}

func (g *Graph) buildIndexed(probe int) {
	w := g.Cfg.WL
	if !contains(g.FD.LHS, probe) {
		w = g.Cfg.WR
	}
	attrTau := g.Tau / w
	ix := strsim.NewIndex(2)
	// Index distinct probe values; map value -> vertices carrying it.
	valID := make(map[string]int)
	byVal := make(map[int][]int) // probe value id -> vertex indices
	for vi, v := range g.Vertices {
		val := v.Rep[probe]
		id, ok := valID[val]
		if !ok {
			id = ix.Add(val)
			valID[val] = id
		}
		byVal[id] = append(byVal[id], vi)
	}
	for val, id := range valID {
		for _, m := range ix.SearchNormalized(val, attrTau) {
			if m.ID < id {
				continue // handle each value pair once (m.ID == id covers same-value vertices)
			}
			for _, vi := range byVal[id] {
				for _, vj := range byVal[m.ID] {
					if vj <= vi && m.ID == id {
						continue // same value bucket: avoid double visits and self loops
					}
					if g.ungrouped && g.FD.ProjEqual(g.Vertices[vi].Rep, g.Vertices[vj].Rep) {
						continue
					}
					if _, ok := g.distWithin(g.Vertices[vi].Rep, g.Vertices[vj].Rep); ok {
						g.addEdge(vi, vj, g.PatternDist(vi, vj))
					}
				}
			}
		}
	}
}

func contains(cols []int, c int) bool {
	for _, x := range cols {
		if x == c {
			return true
		}
	}
	return false
}

func (g *Graph) addEdge(i, j int, w float64) {
	g.adj[i] = append(g.adj[i], Edge{To: j, W: w})
	g.adj[j] = append(g.adj[j], Edge{To: i, W: w})
}

// Neighbors returns the adjacency list of vertex u, sorted by vertex id.
// Callers must not modify it.
func (g *Graph) Neighbors(u int) []Edge { return g.adj[u] }

// Degree is the number of FT-violation partners of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Edge reports the weight of edge (u,v) if present.
func (g *Graph) Edge(u, v int) (float64, bool) {
	es := g.adj[u]
	lo, hi := 0, len(es)
	for lo < hi {
		mid := (lo + hi) / 2
		if es[mid].To < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(es) && es[lo].To == v {
		return es[lo].W, true
	}
	return 0, false
}

// NumEdges counts undirected edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.adj {
		n += len(es)
	}
	return n / 2
}

// RepairCost is the cost of repairing every tuple grouped in vertex `from`
// to the pattern of vertex `to`: multiplicity times pattern distance (the
// directed grouped-graph weight of §3).
func (g *Graph) RepairCost(from, to int) (float64, bool) {
	w, ok := g.Edge(from, to)
	if !ok {
		return 0, false
	}
	return float64(g.Vertices[from].Mult()) * w, true
}

// Components returns the connected components of the violation graph as
// sorted vertex-id slices, ordered by smallest member.
func (g *Graph) Components() [][]int {
	seen := make([]bool, len(g.Vertices))
	var out [][]int
	for s := range g.Vertices {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, e := range g.adj[u] {
				if !seen[e.To] {
					seen[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
		sort.Ints(comp)
		out = append(out, comp)
	}
	return out
}

// Lookup returns the vertex carrying the same projection as t, if any.
func (g *Graph) Lookup(t dataset.Tuple) (int, bool) {
	v, ok := g.byKey[t.Key(g.FD.Attrs())]
	return v, ok
}

// ViolatorCount counts the vertices whose pattern FT-violates with t's
// projection: the projections differ and their weighted distance is within
// the graph's threshold. t need not correspond to an existing pattern, so
// this also scores hypothetical repairs (the "triggered violations" of
// §4.4).
func (g *Graph) ViolatorCount(t dataset.Tuple) int {
	if v, ok := g.Lookup(t); ok {
		return len(g.adj[v])
	}
	count := 0
	for _, u := range g.Vertices {
		if _, ok := g.distWithin(t, u.Rep); ok {
			count++
		}
	}
	return count
}

// FTAdjacent reports whether tuple t's projection FT-violates vertex v's
// pattern.
func (g *Graph) FTAdjacent(t dataset.Tuple, v int) bool {
	if u, ok := g.Lookup(t); ok {
		if u == v {
			return false
		}
		_, adjacent := g.Edge(u, v)
		return adjacent
	}
	_, within := g.distWithin(t, g.Vertices[v].Rep)
	return within
}

// OrderByFrequency returns vertex ids sorted by multiplicity descending
// (ties by id), the access order §3.1 recommends for the expansion
// algorithm: high-frequency patterns reach good upper bounds early.
func (g *Graph) OrderByFrequency() []int {
	order := make([]int, len(g.Vertices))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ma, mb := g.Vertices[order[a]].Mult(), g.Vertices[order[b]].Mult()
		if ma != mb {
			return ma > mb
		}
		return order[a] < order[b]
	})
	return order
}
