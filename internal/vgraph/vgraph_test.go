package vgraph_test

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"ftrepair/internal/dataset"
	"ftrepair/internal/fd"
	"ftrepair/internal/gen"
	"ftrepair/internal/vgraph"
)

func citizensGraph(t *testing.T, which int, tau float64, opts vgraph.Options) (*vgraph.Graph, *dataset.Relation) {
	t.Helper()
	dirty, _ := gen.Citizens()
	f := gen.CitizensFDs(dirty.Schema)[which]
	cfg := fd.DefaultDistConfig(dirty)
	return vgraph.Build(dirty, f, cfg, tau, opts), dirty
}

// vertexByPattern finds the vertex whose representative carries the given
// Education/Level pattern.
func vertexByPattern(g *vgraph.Graph, edu, level string) int {
	for i, v := range g.Vertices {
		if v.Rep[1] == edu && v.Rep[2] == level {
			return i
		}
	}
	return -1
}

func TestCitizensPhi1GraphShape(t *testing.T) {
	// Fig. 2: the graph of phi1 over Table 1 groups into 7 pattern
	// vertices forming two triangles plus the isolated (HS-grad,9). Under
	// our exact distance constants this shape appears at tau = 0.2; at the
	// paper's illustrative 0.35, cross-cluster pairs like
	// (Bachelors,3)-(Masters,4) (weighted dist 0.34) join too.
	g, _ := citizensGraph(t, 0, 0.2, vgraph.Options{})
	if len(g.Vertices) != 7 {
		t.Fatalf("vertices = %d, want 7", len(g.Vertices))
	}
	bach3 := vertexByPattern(g, "Bachelors", "3")
	bach1 := vertexByPattern(g, "Bachelors", "1")
	bachTypo := vertexByPattern(g, "Bachelers", "3")
	mast4 := vertexByPattern(g, "Masters", "4")
	mast3 := vertexByPattern(g, "Masters", "3")
	masTypo := vertexByPattern(g, "Masers", "4")
	hs := vertexByPattern(g, "HS-grad", "9")
	for _, v := range []int{bach3, bach1, bachTypo, mast4, mast3, masTypo, hs} {
		if v < 0 {
			t.Fatal("missing expected pattern vertex")
		}
	}
	wantEdges := [][2]int{
		{bach3, bach1}, {bach3, bachTypo}, {bach1, bachTypo},
		{mast4, mast3}, {mast4, masTypo}, {mast3, masTypo},
	}
	for _, e := range wantEdges {
		if _, ok := g.Edge(e[0], e[1]); !ok {
			t.Errorf("missing edge %v-%v (%v / %v)", e[0], e[1], g.Vertices[e[0]].Rep, g.Vertices[e[1]].Rep)
		}
	}
	if g.NumEdges() != len(wantEdges) {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), len(wantEdges))
	}
	if g.Degree(hs) != 0 {
		t.Fatalf("HS-grad degree = %d, want 0", g.Degree(hs))
	}
	// Grouping: (Bachelors,3) covers t1,t2,t3.
	if g.Vertices[bach3].Mult() != 3 {
		t.Fatalf("Mult((Bachelors,3)) = %d", g.Vertices[bach3].Mult())
	}
	// Edge weights are symmetric and equal the Eq-3 repair cost between
	// patterns: for (Masters,4)-(Masers,4), one edit over 7 runes plus no
	// Level difference.
	w1, _ := g.Edge(mast4, masTypo)
	w2, _ := g.Edge(masTypo, mast4)
	if w1 != w2 {
		t.Fatal("asymmetric edge weight")
	}
	if math.Abs(w1-1.0/7) > 1e-9 {
		t.Fatalf("weight (Masters,4)-(Masers,4) = %v, want %v", w1, 1.0/7)
	}
	if pd := g.PatternDist(mast4, masTypo); math.Abs(pd-w1) > 1e-9 {
		t.Fatalf("PatternDist = %v, want %v", pd, w1)
	}
}

func TestRepairCostScalesByMultiplicity(t *testing.T) {
	g, _ := citizensGraph(t, 0, 0.2, vgraph.Options{})
	bach3 := vertexByPattern(g, "Bachelors", "3")
	bach1 := vertexByPattern(g, "Bachelors", "1")
	w, _ := g.Edge(bach3, bach1)
	// Repairing the 3 tuples of (Bachelors,3) into (Bachelors,1) costs 3w;
	// the reverse costs 1w.
	c1, ok1 := g.RepairCost(bach3, bach1)
	c2, ok2 := g.RepairCost(bach1, bach3)
	if !ok1 || !ok2 {
		t.Fatal("RepairCost missing edge")
	}
	if math.Abs(c1-3*w) > 1e-9 || math.Abs(c2-w) > 1e-9 {
		t.Fatalf("RepairCost = %v/%v, want %v/%v", c1, c2, 3*w, w)
	}
	if _, ok := g.RepairCost(bach3, vertexByPattern(g, "HS-grad", "9")); ok {
		t.Fatal("RepairCost invented an edge")
	}
}

func TestComponents(t *testing.T) {
	g, _ := citizensGraph(t, 0, 0.2, vgraph.Options{})
	comps := g.Components()
	if len(comps) != 3 { // two triangles + isolated HS-grad
		t.Fatalf("components = %d: %v", len(comps), comps)
	}
	sizes := []int{len(comps[0]), len(comps[1]), len(comps[2])}
	total := sizes[0] + sizes[1] + sizes[2]
	if total != 7 {
		t.Fatalf("component sizes = %v", sizes)
	}
}

func TestOrderByFrequency(t *testing.T) {
	g, _ := citizensGraph(t, 0, 0.2, vgraph.Options{})
	order := g.OrderByFrequency()
	if len(order) != len(g.Vertices) {
		t.Fatalf("order length = %d", len(order))
	}
	for i := 1; i < len(order); i++ {
		if g.Vertices[order[i-1]].Mult() < g.Vertices[order[i]].Mult() {
			t.Fatalf("order not by descending multiplicity at %d", i)
		}
	}
	if g.Vertices[order[0]].Rep[1] != "Bachelors" || g.Vertices[order[0]].Rep[2] != "3" {
		t.Fatalf("most frequent pattern = %v", g.Vertices[order[0]].Rep)
	}
}

func TestPhi2CapturesT8Typo(t *testing.T) {
	// Example 3: (Boton, MA) must be adjacent to (Boston, MA) in phi2's
	// graph even though it has no classic violation.
	g, _ := citizensGraph(t, 1, 0.35, vgraph.Options{})
	var boton, boston int = -1, -1
	for i, v := range g.Vertices {
		switch {
		case v.Rep[3] == "Boton":
			boton = i
		case v.Rep[3] == "Boston" && v.Rep[6] == "MA":
			boston = i
		}
	}
	if boton < 0 || boston < 0 {
		t.Fatal("missing pattern vertices")
	}
	if _, ok := g.Edge(boton, boston); !ok {
		t.Fatal("(Boton,MA)-(Boston,MA) edge missing")
	}
}

func graphsEqual(a, b *vgraph.Graph) error {
	if len(a.Vertices) != len(b.Vertices) {
		return fmt.Errorf("vertex counts differ: %d vs %d", len(a.Vertices), len(b.Vertices))
	}
	for i := range a.Vertices {
		na, nb := a.Neighbors(i), b.Neighbors(i)
		if len(na) != len(nb) {
			return fmt.Errorf("vertex %d degree differs: %d vs %d", i, len(na), len(nb))
		}
		for j := range na {
			if na[j].To != nb[j].To || math.Abs(na[j].W-nb[j].W) > 1e-9 {
				return fmt.Errorf("vertex %d edge %d differs: %+v vs %+v", i, j, na[j], nb[j])
			}
		}
	}
	return nil
}

func TestIndexedMatchesAllPairs(t *testing.T) {
	// The q-gram-indexed construction must produce exactly the graph the
	// naive all-pairs construction does, across random noisy relations.
	rng := rand.New(rand.NewSource(42))
	cities := []string{"Boston", "New York", "Chicago", "Seattle", "Denver", "Austin"}
	states := []string{"MA", "NY", "IL", "WA", "CO", "TX"}
	for trial := 0; trial < 20; trial++ {
		schema := dataset.Strings("City", "State")
		rel := dataset.NewRelation(schema)
		for i := 0; i < 60; i++ {
			k := rng.Intn(len(cities))
			city, state := cities[k], states[k]
			if rng.Intn(4) == 0 { // typo in city
				b := []byte(city)
				b[rng.Intn(len(b))] = byte('a' + rng.Intn(26))
				city = string(b)
			}
			if rng.Intn(5) == 0 { // wrong state
				state = states[rng.Intn(len(states))]
			}
			if err := rel.Append(dataset.Tuple{city, state}); err != nil {
				t.Fatal(err)
			}
		}
		f := fd.MustParse(schema, "City->State")
		cfg := fd.DefaultDistConfig(rel)
		for _, tt := range []float64{0.1, 0.25, 0.4} {
			fast := vgraph.Build(rel, f, cfg, tt, vgraph.Options{})
			slow := vgraph.Build(rel, f, cfg, tt, vgraph.Options{DisableIndex: true})
			if err := graphsEqual(fast, slow); err != nil {
				t.Fatalf("trial %d tau %v: %v", trial, tt, err)
			}
		}
	}
}

func TestNumericOnlyFDFallsBackToAllPairs(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "A", Type: dataset.Numeric},
		dataset.Attribute{Name: "B", Type: dataset.Numeric},
	)
	rel, err := dataset.FromRows(schema, [][]string{
		{"1", "10"}, {"1.5", "10"}, {"100", "20"},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := fd.MustParse(schema, "A->B")
	cfg := fd.DefaultDistConfig(rel)
	g := vgraph.Build(rel, f, cfg, 0.1, vgraph.Options{})
	// (1,10) and (1.5,10): dist = 0.5*(0.5/99) ~ 0.0025 <= 0.1.
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
}

func TestZeroWeightRHSOnlyDifference(t *testing.T) {
	// With w_l=1, w_r=0, tuples equal on X but different on Y are at
	// distance 0: a genuine FT-violation (this is how FT semantics
	// degrades to the classic semantics at tau=0).
	schema := dataset.Strings("X", "Y")
	rel, _ := dataset.FromRows(schema, [][]string{{"a", "1"}, {"a", "2"}})
	f := fd.MustParse(schema, "X->Y")
	cfg, err := fd.NewDistConfig(rel, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := vgraph.Build(rel, f, cfg, 0, vgraph.Options{})
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1 (classic violation at tau=0)", g.NumEdges())
	}
}

func TestEdgeLookupMissing(t *testing.T) {
	g, _ := citizensGraph(t, 0, 0.2, vgraph.Options{})
	if _, ok := g.Edge(0, 0); ok {
		t.Fatal("self edge reported")
	}
}

func TestDisableGrouping(t *testing.T) {
	dirty, _ := gen.Citizens()
	f := gen.CitizensFDs(dirty.Schema)[0]
	cfg := fd.DefaultDistConfig(dirty)
	g := vgraph.Build(dirty, f, cfg, 0.2, vgraph.Options{DisableGrouping: true})
	if len(g.Vertices) != dirty.Len() {
		t.Fatalf("ungrouped vertices = %d, want %d", len(g.Vertices), dirty.Len())
	}
	// No edge may connect vertices with equal projections, and every edge
	// of the grouped graph appears between the corresponding tuples.
	for u := range g.Vertices {
		for _, e := range g.Neighbors(u) {
			if f.ProjEqual(g.Vertices[u].Rep, g.Vertices[e.To].Rep) {
				t.Fatalf("edge between equal projections: %d-%d", u, e.To)
			}
		}
	}
	grouped := vgraph.Build(dirty, f, cfg, 0.2, vgraph.Options{})
	// Edge count relation: each grouped edge (u,v) expands to
	// mult(u)*mult(v) ungrouped edges.
	want := 0
	for u := range grouped.Vertices {
		for _, e := range grouped.Neighbors(u) {
			if e.To > u {
				want += grouped.Vertices[u].Mult() * grouped.Vertices[e.To].Mult()
			}
		}
	}
	if got := g.NumEdges(); got != want {
		t.Fatalf("ungrouped edges = %d, want %d", got, want)
	}
	// Both index paths agree in ungrouped mode too.
	slow := vgraph.Build(dirty, f, cfg, 0.2, vgraph.Options{DisableGrouping: true, DisableIndex: true})
	if err := graphsEqual(g, slow); err != nil {
		t.Fatal(err)
	}
}

func TestOSAFlavorGraph(t *testing.T) {
	// A transposed-typo pair is beyond the threshold under Levenshtein but
	// within it under OSA; the OSA graph must contain the edge and fall
	// back to all-pairs construction.
	schema := dataset.Strings("City", "State")
	rel, err := dataset.FromRows(schema, [][]string{
		{"boston", "MA"}, {"bsoton", "MA"},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := fd.MustParse(schema, "City->State")
	cfg, err := fd.NewDistConfig(rel, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	tau := 0.12 // 0.7*(1/6)=0.117 <= tau < 0.7*(2/6)=0.233
	lev := vgraph.Build(rel, f, cfg, tau, vgraph.Options{})
	if lev.NumEdges() != 0 {
		t.Fatalf("Levenshtein graph has %d edges, want 0", lev.NumEdges())
	}
	cfg.Edit = fd.EditOSA
	osa := vgraph.Build(rel, f, cfg, tau, vgraph.Options{})
	if osa.NumEdges() != 1 {
		t.Fatalf("OSA graph has %d edges, want 1", osa.NumEdges())
	}
}

// randomCityRelation builds a noisy City->State relation: city names with
// occasional typos, states occasionally shuffled.
func randomCityRelation(t *testing.T, rng *rand.Rand, rows int) *dataset.Relation {
	t.Helper()
	cities := []string{"Boston", "New York", "Chicago", "Seattle", "Denver", "Austin", "Portland", "Houston"}
	states := []string{"MA", "NY", "IL", "WA", "CO", "TX", "OR", "TX"}
	rel := dataset.NewRelation(dataset.Strings("City", "State"))
	for i := 0; i < rows; i++ {
		k := rng.Intn(len(cities))
		city, state := cities[k], states[k]
		if rng.Intn(4) == 0 {
			b := []byte(city)
			b[rng.Intn(len(b))] = byte('a' + rng.Intn(26))
			city = string(b)
		}
		if rng.Intn(5) == 0 {
			state = states[rng.Intn(len(states))]
		}
		if err := rel.Append(dataset.Tuple{city, state}); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

// graphsIdentical is the strict form of graphsEqual: adjacency, repair
// weights, and violation distances must match bit for bit, which is what
// Options.Workers promises for any worker count.
func graphsIdentical(a, b *vgraph.Graph) error {
	if len(a.Vertices) != len(b.Vertices) {
		return fmt.Errorf("vertex counts differ: %d vs %d", len(a.Vertices), len(b.Vertices))
	}
	if na, nb := a.NumEdges(), b.NumEdges(); na != nb {
		return fmt.Errorf("edge counts differ: %d vs %d", na, nb)
	}
	for i := range a.Vertices {
		na, nb := a.Neighbors(i), b.Neighbors(i)
		if len(na) != len(nb) {
			return fmt.Errorf("vertex %d degree differs: %d vs %d", i, len(na), len(nb))
		}
		for j := range na {
			if na[j] != nb[j] { // To, W, and D all exact
				return fmt.Errorf("vertex %d edge %d differs: %+v vs %+v", i, j, na[j], nb[j])
			}
		}
	}
	return nil
}

func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	// The parallel build must produce the identical graph — adjacency
	// order, weights, and violation distances bit for bit — for every
	// worker count, for both construction paths, with the distance cache
	// cold, warm, or absent, and across repeated runs.
	rng := rand.New(rand.NewSource(7))
	rel := randomCityRelation(t, rng, 150)
	f := fd.MustParse(rel.Schema, "City->State")
	tau := 0.3
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0), 13}

	shared := fd.DefaultDistConfig(rel)
	ref := vgraph.Build(rel, f, shared, tau, vgraph.Options{DisableIndex: true, Workers: 1})
	if ref.NumEdges() == 0 {
		t.Fatal("degenerate instance: no edges")
	}
	for _, disable := range []bool{false, true} {
		for _, w := range workerCounts {
			for rep := 0; rep < 2; rep++ {
				opts := vgraph.Options{DisableIndex: disable, Workers: w}
				// Warm shared cache.
				if err := graphsIdentical(ref, vgraph.Build(rel, f, shared, tau, opts)); err != nil {
					t.Fatalf("index=%v workers=%d rep=%d warm cache: %v", !disable, w, rep, err)
				}
				// Cold cache.
				if err := graphsIdentical(ref, vgraph.Build(rel, f, fd.DefaultDistConfig(rel), tau, opts)); err != nil {
					t.Fatalf("index=%v workers=%d rep=%d cold cache: %v", !disable, w, rep, err)
				}
				// No cache at all.
				bare := fd.DefaultDistConfig(rel)
				bare.Cache = nil
				if err := graphsIdentical(ref, vgraph.Build(rel, f, bare, tau, opts)); err != nil {
					t.Fatalf("index=%v workers=%d rep=%d no cache: %v", !disable, w, rep, err)
				}
			}
		}
	}
}

func TestViolatorCountIndexMatchesScan(t *testing.T) {
	// On unseen tuples, the indexed graph answers ViolatorCount through the
	// retained q-gram probe index; the all-pairs graph scans every vertex.
	// The counts must agree exactly.
	rng := rand.New(rand.NewSource(11))
	rel := randomCityRelation(t, rng, 80)
	f := fd.MustParse(rel.Schema, "City->State")
	cfg := fd.DefaultDistConfig(rel)
	fast := vgraph.Build(rel, f, cfg, 0.3, vgraph.Options{})
	slow := vgraph.Build(rel, f, cfg, 0.3, vgraph.Options{DisableIndex: true})
	for trial := 0; trial < 50; trial++ {
		tup := rel.Tuples[rng.Intn(rel.Len())].Clone()
		b := []byte(tup[0])
		for edits := 1 + rng.Intn(2); edits > 0; edits-- {
			switch rng.Intn(3) {
			case 0:
				b[rng.Intn(len(b))] = byte('a' + rng.Intn(26))
			case 1:
				b = append(b, byte('a'+rng.Intn(26)))
			default:
				b = b[:len(b)-1]
			}
		}
		tup[0] = string(b)
		if got, want := fast.ViolatorCount(tup), slow.ViolatorCount(tup); got != want {
			t.Fatalf("trial %d %q: indexed count %d, scan count %d", trial, tup[0], got, want)
		}
	}
}

func TestBuildCancelReturnsPartialGraph(t *testing.T) {
	fired := make(chan struct{})
	close(fired)
	rng := rand.New(rand.NewSource(3))
	rel := randomCityRelation(t, rng, 200)
	f := fd.MustParse(rel.Schema, "City->State")
	cfg := fd.DefaultDistConfig(rel)
	full := vgraph.Build(rel, f, cfg, 0.3, vgraph.Options{})
	for _, opts := range []vgraph.Options{
		{Cancel: fired},
		{Cancel: fired, DisableIndex: true},
		{Cancel: fired, DisableIndex: true, Workers: 4},
	} {
		g := vgraph.Build(rel, f, cfg, 0.3, opts)
		if len(g.Vertices) != len(full.Vertices) {
			t.Fatalf("canceled build lost vertices: %d vs %d", len(g.Vertices), len(full.Vertices))
		}
		if g.NumEdges() > full.NumEdges() {
			t.Fatalf("canceled build invented edges: %d vs %d", g.NumEdges(), full.NumEdges())
		}
	}
	// The indexed path polls per probe value, so a pre-fired cancel stops
	// before any candidate verification.
	g := vgraph.Build(rel, f, cfg, 0.3, vgraph.Options{Cancel: fired, Workers: 1})
	if g.NumEdges() != 0 {
		t.Fatalf("pre-fired cancel still verified %d edges", g.NumEdges())
	}
}

func TestLookupViolatorCountFTAdjacent(t *testing.T) {
	g, dirty := citizensGraph(t, 1, 0.35, vgraph.Options{}) // phi2 City->State
	// Lookup an existing tuple's pattern.
	v, ok := g.Lookup(dirty.Tuples[7]) // (Boton, MA)
	if !ok {
		t.Fatal("Lookup missed an existing pattern")
	}
	if g.Vertices[v].Rep[3] != "Boton" {
		t.Fatalf("Lookup returned %v", g.Vertices[v].Rep)
	}
	// ViolatorCount of an existing pattern equals its degree.
	if got, want := g.ViolatorCount(dirty.Tuples[7]), g.Degree(v); got != want {
		t.Fatalf("ViolatorCount = %d, degree = %d", got, want)
	}
	// A hypothetical pattern: one more typo of Boston.
	hyp := dirty.Tuples[6].Clone()
	hyp[3] = "Bostonn"
	if g.ViolatorCount(hyp) == 0 {
		t.Fatal("hypothetical typo has no violators")
	}
	if _, ok := g.Lookup(hyp); ok {
		t.Fatal("Lookup found a non-existent pattern")
	}
	// FTAdjacent for existing and hypothetical tuples.
	boston := -1
	for i, vv := range g.Vertices {
		if vv.Rep[3] == "Boston" && vv.Rep[6] == "MA" {
			boston = i
		}
	}
	if !g.FTAdjacent(dirty.Tuples[7], boston) {
		t.Fatal("(Boton,MA) not adjacent to (Boston,MA)")
	}
	if g.FTAdjacent(dirty.Tuples[6], boston) {
		t.Fatal("a tuple adjacent to its own pattern")
	}
	if !g.FTAdjacent(hyp, boston) {
		t.Fatal("hypothetical typo not adjacent to (Boston,MA)")
	}
}
